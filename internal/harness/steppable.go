package harness

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/attrib"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// demandSource is the common surface of a single workload runner and a
// co-located multiplexer: the harness drives whichever the run was
// configured with and never needs to know which.
type demandSource interface {
	Step(now, dt time.Duration)
	Demand() workload.Demand
	Done() bool
	Elapsed() time.Duration
	PhaseName() string
}

// Steppable is a single harness run under external clock control: the
// exact wiring Run performs — runner → node demand flow, fault set,
// governor attachment, telemetry, observability, spans — but instead of
// running to completion it advances in caller-chosen virtual-time
// increments. It exists for long-running services (magusd serve) that
// interleave many tenant sessions, each of which must remain
// deterministic and byte-identical to the equivalent Run call.
//
// A Steppable is single-goroutine: like governors, it must not be
// shared across runs, and callers serialise access themselves.
type Steppable struct {
	eng    *sim.Engine
	n      *node.Node
	runner *workload.Runner // single-tenant runs only (nil when colocated)
	mux    *workload.Mux    // co-located runs only (nil otherwise)
	src    demandSource     // whichever of the two drives this run
	meter  *attrib.Meter    // per-tenant energy split (nil unless colocated)
	wname  string           // workload label for results and diagnostics
	gov    governor.Governor
	cfg    node.Config
	prog   *workload.Program
	opt    Options
	fset   *faults.Set
	rec    *telemetry.Recorder
	ro     *runObserver

	// env, mons and ss are retained for the checkpoint layer: the
	// governor environment (RAPL reader, limit shadow), the concrete
	// PCM monitors beneath the fault wrappers, and the span sampler's
	// phase cursor.
	env  *governor.Env
	mons *envMonitors
	ss   *spanSampler

	horizon time.Duration
	done    bool
	res     Result
}

// NewSteppable wires a run without starting it. The governor is
// attached fresh; governors are stateful and must not be reused.
func NewSteppable(cfg node.Config, prog *workload.Program, gov governor.Governor, opt Options) (*Steppable, error) {
	return newSteppable(cfg, prog, gov, opt, false)
}

// newSteppable is NewSteppable plus the resume flag: a resuming run is
// constructed identically (construction-time side effects — Attach MSR
// writes, RAPL unit reads, injector creation — must replay exactly) but
// suppresses the run_start event, since the original run already
// emitted it into the caller's event stream.
func newSteppable(cfg node.Config, prog *workload.Program, gov governor.Governor, opt Options, resuming bool) (*Steppable, error) {
	eng := sim.NewEngine(opt.Step)
	n := node.New(cfg)

	// A run is driven either by a single workload runner (prog) or by a
	// co-located multiplexer (opt.Tenants), never both. The colocated
	// branch is strictly additive: with opt.Tenants nil the wiring below
	// is byte-for-byte the seed's single-tenant path.
	var (
		runner  *workload.Runner
		mux     *workload.Mux
		src     demandSource
		meter   *attrib.Meter
		wname   string
		nominal time.Duration
	)
	if opt.Tenants != nil {
		if prog != nil {
			return nil, fmt.Errorf("harness: a program and Options.Tenants are mutually exclusive (the colocation supplies its own programs)")
		}
		var err error
		mux, err = workload.NewMux(*opt.Tenants, cfg.SystemBWGBs())
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		mux.SetAttained(n.AttainedGBs)
		// The node retains the mux's live share slice; the mux mutates
		// it in place each step, so the attribution sampler always sees
		// the current split without per-tick allocation.
		n.SetTenantShares(mux.Shares())
		meter, err = attrib.NewMeter(mux.Tenants())
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		src, wname, nominal = mux, mux.Name(), mux.NominalDuration()
	} else {
		runner = workload.NewRunner(prog, cfg.SystemBWGBs(), opt.Seed)
		runner.SetAttained(n.AttainedGBs)
		src, wname, nominal = runner, prog.Name, prog.NominalDuration()
	}

	var fset *faults.Set
	if opt.Faults.Armed() {
		if err := opt.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		fset = faults.NewSet(opt.Faults, eng.Clock().Now)
	}
	env, mons, err := buildEnv(n, fset, opt.PCMNoise)
	if err != nil {
		return nil, err
	}
	if opt.Spans != nil {
		// Intercept uncore-limit writes for MSR-write spans. The
		// wrapper is a pure pass-through, installed after the fault
		// layer so it records what actually reached the hardware.
		env.Dev = &spanMSRDevice{
			inner: env.Dev, tr: opt.Spans,
			now: eng.Clock().Now, cps: cfg.CoresPerSocket,
		}
	}
	if err := gov.Attach(env); err != nil {
		return nil, fmt.Errorf("harness: attach %s: %w", gov.Name(), err)
	}

	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = nominal*4 + 10*time.Second
	}

	// Demand flows source → node each step; the source reads the
	// node's service from the previous step.
	eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
		src.Step(now, dt)
		n.SetDemand(src.Demand())
	}))
	eng.AddComponent(n)
	if meter != nil {
		// The attribution sampler reads power the node just computed,
		// so it is added after the node component.
		eng.AddComponent(installAttrib(meter, n, mux.Tenants(), opt.Obs))
	}

	var rec *telemetry.Recorder
	if opt.TraceInterval > 0 {
		rec = NewNodeRecorder(n, opt.TraceInterval)
		// The nominal horizon bounds the sample count; reserving up
		// front keeps trace appends from reallocating mid run.
		rec.Reserve(int(nominal/opt.TraceInterval) + 2)
		if fset != nil {
			rec.Track("faults_injected", func() float64 { return float64(fset.Tally().Total()) })
		}
		if hr, ok := gov.(healthReporter); ok {
			rec.Track("sensor_health", func() float64 { return float64(hr.SensorHealth()) })
		}
		eng.AddComponent(rec)
	}

	var ro *runObserver
	if opt.Obs != nil {
		ro = installObservability(opt.Obs, n, fset, gov, opt.ObsInterval, opt, cfg.Name, wname, resuming)
		eng.AddComponent(ro)
	}

	if opt.Flight != nil {
		eng.AddComponent(installFlight(opt.Flight, fset, gov))
		opt.Flight.Record(0, flight.KindMark, "run_start", float64(opt.Seed), 0, 0)
	}

	govFn := gov.Invoke
	var ss *spanSampler
	if opt.Spans != nil {
		// The sampler reads state the node just computed, so it is
		// added after the node component; the tick wrapper opens a
		// tick span around every scheduled invocation.
		ss = installSpans(opt.Spans, n, src, wname, gov, opt.Obs, opt, horizon)
		eng.AddComponent(ss)
		govFn = tickFn(opt.Spans, gov.Invoke)
		if mux != nil {
			// Installed after SetPowerModel (installSpans) because
			// SetPowerModel resets the ledger, which would drop the
			// split. The weight slice is live: the mux rewrites it each
			// step, so the ledger splits by the current memory-traffic
			// shares.
			opt.Spans.SetTenantSplit(mux.Tenants(), mux.MemWeights())
		}
	}

	eng.AddTask(&sim.Task{
		Name:     gov.Name(),
		Interval: gov.Interval(),
		Fn:       govFn,
	}, 0)

	return &Steppable{
		eng: eng, n: n, runner: runner, mux: mux, src: src,
		meter: meter, wname: wname, gov: gov,
		cfg: cfg, prog: prog, opt: opt,
		fset: fset, rec: rec, ro: ro,
		env: env, mons: mons, ss: ss,
		horizon: horizon,
	}, nil
}

// Now returns the run's current virtual time.
func (s *Steppable) Now() time.Duration { return s.eng.Clock().Now() }

// Done reports whether the workload has completed (and the result
// finalised).
func (s *Steppable) Done() bool { return s.done }

// Node exposes the simulated node for live probes (power, frequency);
// callers must treat it as read-only.
func (s *Steppable) Node() *node.Node { return s.n }

// Horizon returns the safety horizon beyond which Advance refuses to
// run (4× nominal duration + 10 s unless Options.Horizon was set).
func (s *Steppable) Horizon() time.Duration { return s.horizon }

// NextInvocation returns the virtual time of the next scheduled
// governor invocation. Advancing exactly to it leaves the invocation
// pending but unfired — the pre-invoke checkpoint boundary the
// fork-from-prefix planner captures at.
func (s *Steppable) NextInvocation() time.Duration {
	next, _ := s.eng.NextTask()
	return next
}

// Result returns the finalised metrics; valid only once Done reports
// true.
func (s *Steppable) Result() Result { return s.res }

// TenantReport snapshots the live per-tenant energy attribution of a
// co-located run; it may be read mid-run (magusd serve session status)
// and returns nil for single-tenant runs.
func (s *Steppable) TenantReport() *attrib.Report {
	if s.meter == nil {
		return nil
	}
	return s.meter.Report()
}

// Advance runs the simulation forward by up to d of virtual time,
// stopping early when the workload completes — in which case the
// result is finalised exactly as Run would have, and Advance returns
// true. Reaching the safety horizon without completing is an error
// (sim.ErrHorizon, wrapped with the run identity), after which the
// run is stuck: further calls return the same error.
func (s *Steppable) Advance(d time.Duration) (bool, error) {
	if s.done {
		return true, nil
	}
	if d <= 0 {
		return false, nil
	}
	target := s.eng.Clock().Now() + d
	if target > s.horizon {
		target = s.horizon
	}
	// The stop condition includes the target time, so this RunUntil
	// always terminates well inside its own safety horizon.
	s.eng.RunUntil(func() bool {
		return s.src.Done() || s.eng.Clock().Now() >= target
	}, d+time.Second)
	if s.src.Done() {
		s.finish()
		return true, nil
	}
	if s.eng.Clock().Now() >= s.horizon {
		return false, fmt.Errorf("harness: %s/%s/%s: %w",
			s.cfg.Name, s.wname, s.gov.Name(), sim.ErrHorizon)
	}
	return false, nil
}

// finish finalises the result, mirroring the tail of Run.
func (s *Steppable) finish() Result {
	s.opt.Spans.Finish(s.eng.Clock().Now())

	runtime := s.src.Elapsed().Seconds()
	pkgJ, drmJ, gpuJ := s.n.EnergyJ()
	res := Result{
		System:      s.cfg.Name,
		Workload:    s.wname,
		Governor:    s.gov.Name(),
		RuntimeS:    runtime,
		PkgEnergyJ:  pkgJ,
		DramEnergyJ: drmJ,
		GPUEnergyJ:  gpuJ,
		Traces:      s.rec,
	}
	if runtime > 0 {
		res.AvgCPUPowerW = (pkgJ + drmJ) / runtime
	}
	if s.fset != nil {
		res.FaultsInjected = s.fset.Tally()
	}
	if s.meter != nil {
		res.Tenants = s.meter.Report()
	}
	if s.ro != nil {
		s.ro.finish(s.eng.Clock().Now(), res)
	}
	s.opt.Flight.Record(s.eng.Clock().Now().Seconds(), flight.KindMark, "run_end",
		res.RuntimeS, res.TotalEnergyJ(), 0)
	s.done = true
	s.res = res
	return res
}

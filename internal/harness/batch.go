package harness

import (
	"context"

	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/parallel"
	"github.com/spear-repro/magus/internal/stats"
	"github.com/spear-repro/magus/internal/workload"
)

// RunSpec is one fully-described experiment cell: a (system, app,
// governor, options) tuple that Run can execute independently of every
// other cell. The Factory is invoked exactly once, inside the cell, so
// governor state never crosses cells; Opt.Seed makes the cell
// deterministic on its own.
type RunSpec struct {
	Cfg     node.Config
	Prog    *workload.Program
	Factory GovernorFactory
	Opt     Options
}

// RunBatch executes every spec on a bounded worker pool (jobs <= 0
// selects GOMAXPROCS) and returns the results in spec order. Because
// each cell builds its own engine, node, runner and governor, results
// are byte-identical to a serial sweep for any jobs value; the first
// cell error cancels remaining cells and is returned.
//
// Pool metrics (magus_pool_*) are registered on the first non-nil
// Opt.Obs registry found in specs. Callers whose specs share mutable
// state across cells — e.g. a single Opt.PCMNoise closure over one
// rand.Rand — must pass jobs=1 or derive independent state per spec;
// RunRepeated does this automatically.
func RunBatch(specs []RunSpec, jobs int) ([]Result, error) {
	var m *parallel.Metrics
	for _, s := range specs {
		if s.Opt.Obs != nil {
			m = parallel.NewMetrics(s.Opt.Obs.Registry())
			break
		}
	}
	return parallel.Map(context.Background(), len(specs), jobs, m,
		func(_ context.Context, i int) (Result, error) {
			s := specs[i]
			return Run(s.Cfg, s.Prog, s.Factory(), s.Opt)
		})
}

// RepeatSpecs expands one (cfg, prog, factory) cell into reps specs
// carrying the repeat-seed contract the evaluation depends on: repeat i
// runs with Seed = opt.Seed + i*7919 (7919 is the 1000th prime; the
// stride keeps repeat seed sequences of adjacent base seeds disjoint)
// and TraceInterval forced to zero, since traces only make sense for a
// single run.
func RepeatSpecs(cfg node.Config, prog *workload.Program, factory GovernorFactory, reps int, opt Options) []RunSpec {
	if reps < 1 {
		reps = 1
	}
	specs := make([]RunSpec, reps)
	for i := range specs {
		o := opt
		o.Seed = opt.Seed + int64(i)*7919
		o.TraceInterval = 0 // traces only make sense per run
		o.Spans = nil       // tracers are single-run; sharing one across parallel repeats would race
		o.Flight = nil      // flight rings are single-run diagnostics; interleaved repeats would garble the tail
		specs[i] = RunSpec{Cfg: cfg, Prog: prog, Factory: factory, Opt: o}
	}
	return specs
}

// Reduce aggregates repeated-run results into one Result using the
// paper's outlier-trimmed averaging (§6). Identity fields are taken
// from the first result.
func Reduce(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	runtimes := make([]float64, 0, len(results))
	powers := make([]float64, 0, len(results))
	pkgs := make([]float64, 0, len(results))
	drams := make([]float64, 0, len(results))
	gpus := make([]float64, 0, len(results))
	for _, res := range results {
		runtimes = append(runtimes, res.RuntimeS)
		powers = append(powers, res.AvgCPUPowerW)
		pkgs = append(pkgs, res.PkgEnergyJ)
		drams = append(drams, res.DramEnergyJ)
		gpus = append(gpus, res.GPUEnergyJ)
	}
	return Result{
		System:       results[0].System,
		Workload:     results[0].Workload,
		Governor:     results[0].Governor,
		RuntimeS:     stats.TrimmedMean(runtimes),
		AvgCPUPowerW: stats.TrimmedMean(powers),
		PkgEnergyJ:   stats.TrimmedMean(pkgs),
		DramEnergyJ:  stats.TrimmedMean(drams),
		GPUEnergyJ:   stats.TrimmedMean(gpus),
	}
}

package harness

import (
	"time"

	"github.com/spear-repro/magus/internal/attrib"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
)

// Everything in this file is wired only when Options.Tenants is set. A
// single-tenant run adds no component and no meter, so it stays
// byte-identical to the seed with the zero-alloc tick contract intact.

// attribSampler drives the per-tenant energy meter once per engine
// step: it reads the power the node just computed and the live tenant
// share surface the multiplexer publishes through the node. It must be
// added to the engine after the node component.
type attribSampler struct {
	meter *attrib.Meter
	n     *node.Node
	gpus  int

	// Optional metric mirrors (nil without Options.Obs):
	// magus_tenant_energy_joules{tenant,estimated}.
	exact, est []*obs.Gauge
}

// Step implements sim.Component.
func (a *attribSampler) Step(now, dt time.Duration) {
	var gpuW float64
	for i := 0; i < a.gpus; i++ {
		gpuW += a.n.GPUPowerW(i)
	}
	a.meter.Accumulate(dt.Seconds(), a.n.CPUPowerW(), gpuW, a.n.TenantShares())
	if a.exact != nil {
		for i := range a.exact {
			t := a.meter.Tenant(i)
			a.exact[i].Set(t.ExactJ)
			a.est[i].Set(t.EstimatedJ)
		}
	}
}

// installAttrib wires the attribution meter into a co-located run and,
// when an observer is attached, the per-tenant energy metric family
// with the DCGM-style estimated label.
func installAttrib(meter *attrib.Meter, n *node.Node, names []string, o *obs.Observer) *attribSampler {
	a := &attribSampler{meter: meter, n: n, gpus: n.GPUCount()}
	if o != nil {
		vec := o.Registry().GaugeVec("magus_tenant_energy_joules",
			"Cumulative energy attributed to each tenant of a co-located run, split by "+
				"attribution regime: estimated=\"false\" is measured energy from exclusive "+
				"ownership, estimated=\"true\" is the utilisation-share fallback.",
			"tenant", "estimated")
		for _, name := range names {
			a.exact = append(a.exact, vec.With(name, "false"))
			a.est = append(a.est, vec.With(name, "true"))
		}
	}
	return a
}

package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

// flightRun executes the goldens' fixed scenario (MAGUS on Intel+A100
// running bfs, pcm-loss faults armed) with the given ring.
func flightRun(t *testing.T, ring *flight.Ring) Result {
	t.Helper()
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	plan, ok := faults.Preset("pcm-loss")
	if !ok {
		t.Fatal("pcm-loss preset missing")
	}
	res, err := Run(cfg, prog, core.New(core.DefaultConfig()),
		Options{Seed: 1, Faults: plan, Flight: ring})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFlightRecordsRun: an armed run leaves decisions, health
// transitions, fault tallies and lifecycle marks in the ring, and its
// Result is byte-identical to the unarmed run (recording is passive).
func TestFlightRecordsRun(t *testing.T) {
	ring := flight.NewRing(4096)
	got := flightRun(t, ring)
	want := flightRun(t, nil)
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("flight recording perturbed the run\nwant %s\ngot  %s", wj, gj)
	}

	snap := ring.Snapshot()
	if len(snap) == 0 {
		t.Fatal("ring empty after armed run")
	}
	kinds := map[flight.Kind]int{}
	for _, r := range snap {
		kinds[r.Kind]++
	}
	if kinds[flight.KindDecision] == 0 {
		t.Fatal("no decisions recorded")
	}
	if kinds[flight.KindHealth] == 0 {
		t.Fatal("no health transitions recorded (pcm-loss must degrade the sensor)")
	}
	if kinds[flight.KindFault] == 0 {
		t.Fatal("no fault tallies recorded")
	}
	if snap[0].Tag != "run_start" {
		t.Fatalf("first record = %q, want run_start", snap[0].Tag)
	}
	last := snap[len(snap)-1]
	if last.Tag != "run_end" || last.A != got.RuntimeS {
		t.Fatalf("last record = %+v, want run_end with runtime %v", last, got.RuntimeS)
	}

	var buf bytes.Buffer
	if err := ring.DumpJSONL(&buf, "harness-test"); err != nil {
		t.Fatalf("dump: %v", err)
	}
	for _, ln := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var obj map[string]any
		if err := json.Unmarshal(ln, &obj); err != nil {
			t.Fatalf("dump line does not parse: %v (%s)", err, ln)
		}
	}
}

// TestFlightDeterministic: two identical armed runs record identical
// ring contents (the recorder carries no wall-clock state).
func TestFlightDeterministic(t *testing.T) {
	a, b := flight.NewRing(1024), flight.NewRing(1024)
	flightRun(t, a)
	flightRun(t, b)
	var da, db bytes.Buffer
	if err := a.DumpJSONL(&da, "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.DumpJSONL(&db, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Bytes(), db.Bytes()) {
		t.Fatal("armed runs are not deterministic")
	}
}

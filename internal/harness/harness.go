// Package harness runs complete experiments: it wires a workload
// runner, the node simulator, a governor and telemetry onto the
// simulation engine, executes the run to completion, and reduces the
// results into the paper's three metrics (§5):
//
//   - performance loss: percentage runtime increase versus baseline;
//   - power saving: average CPU (package + DRAM) power reduction;
//   - energy saving: total (CPU package + DRAM + GPU board)
//     energy-to-solution reduction.
//
// Repeated runs use distinct seeds and the paper's outlier-trimmed
// averaging (§6).
package harness

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/attrib"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/rapl"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// Options controls a single run.
type Options struct {
	// Seed drives the workload's pseudo-random modulation.
	Seed int64
	// Step is the engine timestep (0 = sim.DefaultStep).
	Step time.Duration
	// TraceInterval enables telemetry recording at that period
	// (0 = no traces). Figures 1/5/6 use 100 ms.
	TraceInterval time.Duration
	// Horizon bounds the run (0 = 4× nominal duration + 10 s).
	Horizon time.Duration
	// PCMNoise, when set, is installed as the measurement-noise
	// transform on every PCM monitor the governor sees — robustness
	// studies and failure injection.
	PCMNoise func(gbs float64) float64
	// Faults arms a deterministic fault schedule against the node's
	// telemetry devices (nil/empty = no injection, bit-identical to the
	// unfaulted path).
	Faults *faults.Plan
	// Obs attaches a metrics/event observer to the run. Observation is
	// passive — it only reads state the simulation already computed —
	// so an observed run produces bit-identical traces and Stats() to
	// an unobserved one (nil = no observability, zero overhead).
	Obs *obs.Observer
	// ObsInterval is the metrics sampling period when Obs is set
	// (0 = DefaultObsInterval, 100 ms).
	ObsInterval time.Duration
	// Jobs bounds the worker pool RunRepeated fans repeats across
	// (<= 0 = GOMAXPROCS). Results are byte-identical for any value.
	Jobs int
	// Spans attaches a decision-causality tracer and waste ledger to
	// the run (nil = disabled; the disabled path adds no component, no
	// device wrapper and no allocations, so it stays byte-identical to
	// the seed). Tracers are single-run objects: like governors, they
	// must not be shared across runs, and RepeatSpecs nils them out.
	Spans *spans.Tracer
	// Flight attaches a bounded flight recorder (internal/flight): the
	// run's recent governor decisions, sensor-health transitions and
	// fault tallies land in the ring, ready to dump on a panic or
	// SIGQUIT. Recording is passive and allocation-free; nil (the
	// default) adds no component and stays byte-identical to the seed.
	// Rings are single-run diagnostics: RepeatSpecs nils them out.
	Flight *flight.Ring
	// Tenants co-locates several workloads on the node through a
	// time-slicing multiplexer and attributes measured energy across
	// them (Result.Tenants). It replaces the program argument: callers
	// pass a nil program when set. Nil = single-tenant, the unchanged
	// seed path.
	Tenants *workload.MuxSpec
}

// Result is one run's outcome.
type Result struct {
	System   string
	Workload string
	Governor string

	// RuntimeS is the application's end-to-end runtime in seconds.
	RuntimeS float64
	// AvgCPUPowerW is the run-average package+DRAM power.
	AvgCPUPowerW float64
	// Energy-to-solution components, joules.
	PkgEnergyJ  float64
	DramEnergyJ float64
	GPUEnergyJ  float64

	// Traces holds the recorder when Options.TraceInterval was set.
	Traces *telemetry.Recorder

	// FaultsInjected tallies device-fault injections when a plan was
	// armed (zero otherwise).
	FaultsInjected faults.Tally

	// Tenants is the per-tenant energy attribution of a co-located run
	// (nil for single-tenant runs).
	Tenants *attrib.Report `json:",omitempty"`
}

// TotalEnergyJ is the paper's energy metric: CPU package + DRAM + GPU
// board energy.
func (r Result) TotalEnergyJ() float64 { return r.PkgEnergyJ + r.DramEnergyJ + r.GPUEnergyJ }

// Run executes prog on a node built from cfg under gov and returns the
// metrics. The governor is attached fresh; governors are stateful and
// must not be reused across runs. Run is NewSteppable driven to
// completion in one call; the two paths perform the identical
// computation and produce byte-identical results.
func Run(cfg node.Config, prog *workload.Program, gov governor.Governor, opt Options) (Result, error) {
	st, err := NewSteppable(cfg, prog, gov, opt)
	if err != nil {
		return Result{}, err
	}
	if _, err := st.eng.RunUntil(st.src.Done, st.horizon); err != nil {
		return Result{}, fmt.Errorf("harness: %s/%s/%s: %w", cfg.Name, st.wname, gov.Name(), err)
	}
	return st.finish(), nil
}

// healthReporter is the optional sensor-health surface governors expose
// (MAGUS, UPS and DUF all implement it).
type healthReporter interface {
	SensorHealth() resilient.Health
}

// BuildEnv wires a governor environment onto a node: the node's MSR
// device, a PCM monitor over its IMC traffic counter, a RAPL reader,
// and the overhead-charging hook.
func BuildEnv(n *node.Node) (*governor.Env, error) {
	env, _, err := buildEnv(n, nil, nil)
	return env, err
}

// BuildFaultyEnv is BuildEnv with a fault-wrapper set interposed on
// the telemetry devices, for callers outside the harness (the cluster
// engine arms per-member fault plans). A nil set is exactly BuildEnv.
func BuildFaultyEnv(n *node.Node, fset *faults.Set) (*governor.Env, error) {
	env, _, err := buildEnv(n, fset, nil)
	return env, err
}

// envMonitors exposes the concrete PCM monitors underneath the fault
// wrappers, so the checkpoint layer can capture and restore their
// sampling baselines directly.
type envMonitors struct {
	sys  *pcm.Monitor
	sock []*pcm.Monitor
}

// buildEnv is BuildEnv plus an optional fault-wrapper set and PCM
// measurement noise. The MSR device is wrapped *before* the RAPL reader
// is constructed over it, so rapl-target faults reach the energy
// counters; noise applies to the concrete monitors before fault
// wrapping, so an injected stale/wild value is never re-noised.
func buildEnv(n *node.Node, fset *faults.Set, noise func(gbs float64) float64) (*governor.Env, *envMonitors, error) {
	cfg := n.Config()
	dev := fset.WrapDevice(n.MSRDevice())
	raplReader, err := rapl.New(dev, cfg.Sockets, n.Space().FirstCPUOf)
	if err != nil {
		if !fset.Armed() {
			return nil, nil, fmt.Errorf("harness: rapl: %w", err)
		}
		// An injected fault hit the one-time unit-register read; run
		// without RAPL, as a daemon losing the energy interface would.
		raplReader = nil
	}
	mon := pcm.New(n.ServedGB)
	if noise != nil {
		mon.SetNoise(noise)
	}
	mons := &envMonitors{sys: mon}
	sockPCM := make([]pcm.Reader, cfg.Sockets)
	for s := 0; s < cfg.Sockets; s++ {
		sock := s
		m := pcm.New(func() float64 { return n.ServedGBSocket(sock) })
		if noise != nil {
			m.SetNoise(noise)
		}
		mons.sock = append(mons.sock, m)
		sockPCM[s] = fset.WrapPCM(m)
	}
	return &governor.Env{
		Dev:          dev,
		PCM:          fset.WrapPCM(mon),
		RAPL:         raplReader,
		Sockets:      cfg.Sockets,
		CPUs:         cfg.Sockets * cfg.CoresPerSocket,
		FirstCPU:     n.Space().FirstCPUOf,
		SocketPCM:    sockPCM,
		UncoreMinGHz: cfg.UncoreMinGHz,
		UncoreMaxGHz: cfg.UncoreMaxGHz,
		Charge:       n.AddDaemonBusy,
	}, mons, nil
}

// NewNodeRecorder builds the standard telemetry set used by the trace
// figures: memory throughput, uncore/core/GPU frequencies, and power by
// domain.
func NewNodeRecorder(n *node.Node, interval time.Duration) *telemetry.Recorder {
	rec := telemetry.NewRecorder(interval)
	rec.Track("mem_gbs", n.AttainedGBs)
	rec.Track("uncore_ghz", func() float64 { return n.UncoreFreqGHz(0) })
	rec.Track("cpu_power_w", n.CPUPowerW)
	rec.Track("pkg0_power_w", func() float64 { return n.PkgPowerW(0) })
	rec.Track("dram_power_w", func() float64 {
		var p float64
		for s := 0; s < n.Config().Sockets; s++ {
			p += n.DramPowerW(s)
		}
		return p
	})
	for c := 0; c < 4 && c < n.Config().CoresPerSocket; c++ {
		cpu := c
		rec.Track(fmt.Sprintf("core%d_ghz", cpu), func() float64 { return n.CoreFreqGHz(cpu) })
	}
	if n.GPUCount() > 0 {
		rec.Track("gpu0_clock_mhz", func() float64 { return n.GPUClockMHz(0) })
		rec.Track("gpu0_power_w", func() float64 { return n.GPUPowerW(0) })
	}
	return rec
}

// GovernorFactory builds a fresh governor per run (they are stateful).
type GovernorFactory func() governor.Governor

// Comparison is the paper's three-metric comparison of a policy against
// the baseline run.
type Comparison struct {
	PerfLossPct     float64
	PowerSavingPct  float64
	EnergySavingPct float64
}

// Compare reduces (baseline, candidate) results to the three metrics.
func Compare(base, x Result) Comparison {
	var c Comparison
	if base.RuntimeS > 0 {
		c.PerfLossPct = (x.RuntimeS - base.RuntimeS) / base.RuntimeS * 100
	}
	if base.AvgCPUPowerW > 0 {
		c.PowerSavingPct = (base.AvgCPUPowerW - x.AvgCPUPowerW) / base.AvgCPUPowerW * 100
	}
	if be := base.TotalEnergyJ(); be > 0 {
		c.EnergySavingPct = (be - x.TotalEnergyJ()) / be * 100
	}
	return c
}

// RunRepeated executes reps runs with distinct seeds and returns the
// outlier-trimmed mean of every metric (§6's methodology). Repeats fan
// out across opt.Jobs workers; because each repeat is an independent
// deterministic cell, the aggregate is byte-identical for any jobs
// value. A shared PCMNoise closure would be mutated from several
// goroutines at once, so runs carrying one are forced serial — callers
// wanting parallel noisy repeats must build per-repeat closures and go
// through RunBatch directly.
func RunRepeated(cfg node.Config, prog *workload.Program, factory GovernorFactory, reps int, opt Options) (Result, error) {
	jobs := opt.Jobs
	if opt.PCMNoise != nil {
		jobs = 1
	}
	results, err := RunBatch(RepeatSpecs(cfg, prog, factory, reps, opt), jobs)
	if err != nil {
		return Result{}, err
	}
	return Reduce(results), nil
}

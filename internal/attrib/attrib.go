// Package attrib splits a shared node's measured energy across the
// tenants of a co-located run — the fleet-accounting question the
// ROADMAP's north star asks ("which user wasted the joules") that the
// paper's single-application energy metric cannot answer.
//
// The attribution follows the production pattern of per-process GPU
// exporters: when one tenant holds the device exclusively (a
// round-robin quantum, or the last live tenant of a colocation), the
// whole sample is charged to it as hardware-measured, exact energy;
// when several tenants are concurrently live, the sample is split by
// utilisation shares — socket energy by memory-traffic share, GPU
// energy by SM share — and labelled estimated. Every sample lands in
// exactly one of the two regimes, and the per-tenant joules sum to an
// independently integrated total within an ulp tolerance scaled by the
// sample count (the same balance discipline as the spans ledger).
package attrib

import (
	"fmt"
	"math"

	"github.com/spear-repro/magus/internal/workload"
)

// TenantEnergy is one tenant's accumulated attribution.
type TenantEnergy struct {
	Tenant string
	// ExactJ is energy attributed while the tenant held the node
	// exclusively — measured, not estimated.
	ExactJ float64
	// EstimatedJ is energy attributed by utilisation share while
	// several tenants were live.
	EstimatedJ float64
	// ExactS and EstimatedS are the virtual seconds spent in each
	// attribution regime.
	ExactS     float64
	EstimatedS float64
}

// TotalJ is the tenant's full bill.
func (t TenantEnergy) TotalJ() float64 { return t.ExactJ + t.EstimatedJ }

// Estimated reports whether any of the tenant's energy had to be
// estimated from utilisation shares (the DCGM fallback label).
func (t TenantEnergy) Estimated() bool { return t.EstimatedS > 0 }

// Report is a run's attribution summary: the per-tenant split plus the
// independently integrated total it must balance against.
type Report struct {
	Tenants []TenantEnergy
	// TotalJ integrates the node's measured power in a single
	// accumulator, independent of the per-tenant split, so Balanced is
	// a real invariant check rather than a tautology.
	TotalJ float64
	// Samples counts integration steps (sizes the balance tolerance).
	Samples int
}

// SumJ returns the sum of per-tenant bills.
func (r *Report) SumJ() float64 {
	var s float64
	for _, t := range r.Tenants {
		s += t.TotalJ()
	}
	return s
}

// Balanced reports the attribution invariant: per-tenant joules sum to
// the independently integrated total within tolUlps ulps of the total.
func (r *Report) Balanced(tolUlps float64) bool {
	return math.Abs(r.SumJ()-r.TotalJ) <= tolUlps*ulp(r.TotalJ)
}

// BalanceTol returns the report's own balance tolerance: the
// per-sample rounding allowance scaled by samples × tenants (each step
// adds one rounding per tenant bucket plus one to the total).
func (r *Report) BalanceTol() float64 {
	return BalanceTolUlps(r.Samples * len(r.Tenants))
}

// DefaultBalanceUlps is the per-sample rounding allowance, matching
// the spans ledger's discipline.
const DefaultBalanceUlps = 4.0

// BalanceTolUlps returns the ulp tolerance for a split integrated from
// n (sample × tenant) contributions.
func BalanceTolUlps(n int) float64 {
	if n < 1 {
		n = 1
	}
	return DefaultBalanceUlps * float64(n)
}

// ulp returns the unit-in-the-last-place spacing at |x| (minimum one
// smallest subnormal so a zero total still admits exact balance).
func ulp(x float64) float64 {
	x = math.Abs(x)
	u := math.Nextafter(x, math.Inf(1)) - x
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return u
}

// Meter integrates per-tenant energy over a run. It is driven once per
// engine step with the node's freshly computed power and the live
// tenant-share surface; steady-state accumulation does not allocate.
type Meter struct {
	tenants []TenantEnergy
	index   map[string]int
	totalJ  float64
	samples int
}

// NewMeter builds a meter for the named tenants (attribution order).
func NewMeter(names []string) (*Meter, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("attrib: no tenants")
	}
	m := &Meter{
		tenants: make([]TenantEnergy, len(names)),
		index:   make(map[string]int, len(names)),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("attrib: tenant %d has no name", i)
		}
		if _, dup := m.index[name]; dup {
			return nil, fmt.Errorf("attrib: duplicate tenant %q", name)
		}
		m.tenants[i].Tenant = name
		m.index[name] = i
	}
	return m, nil
}

// Accumulate charges one integration step: cpuW (package + DRAM) and
// gpuW (board) watts held for dtSec, split across shares. Shares must
// be parallel to the meter's tenants (matched by name). An entry with
// Exclusive set takes the whole step exactly; otherwise socket energy
// is split by memory share and GPU energy by SM share, normalised over
// the live weights — an even split when every weight is zero (idle
// tenants still pay the floor power they jointly keep awake).
func (m *Meter) Accumulate(dtSec, cpuW, gpuW float64, shares []workload.TenantShare) {
	if dtSec <= 0 {
		return
	}
	m.samples++
	m.totalJ += (cpuW + gpuW) * dtSec

	owner := -1
	for i := range shares {
		if shares[i].Exclusive {
			owner = i
			break
		}
	}
	if owner >= 0 {
		t := m.tenant(shares[owner].Tenant)
		t.ExactJ += (cpuW + gpuW) * dtSec
		t.ExactS += dtSec
		return
	}

	var memSum, smSum float64
	for i := range shares {
		memSum += shares[i].MemShare
		smSum += shares[i].SMShare
	}
	eCPU := cpuW * dtSec
	eGPU := gpuW * dtSec
	even := 1 / float64(len(shares))
	for i := range shares {
		mw, sw := even, even
		if memSum > 0 {
			mw = shares[i].MemShare / memSum
		}
		if smSum > 0 {
			sw = shares[i].SMShare / smSum
		}
		t := m.tenant(shares[i].Tenant)
		t.EstimatedJ += eCPU*mw + eGPU*sw
		t.EstimatedS += dtSec
	}
}

// tenant resolves a share label to its bucket; an unknown label is a
// wiring bug (shares come from the same MuxSpec as the meter's names).
func (m *Meter) tenant(name string) *TenantEnergy {
	i, ok := m.index[name]
	if !ok {
		panic(fmt.Sprintf("attrib: unknown tenant %q", name))
	}
	return &m.tenants[i]
}

// TotalJ returns the independently integrated total so far.
func (m *Meter) TotalJ() float64 { return m.totalJ }

// Samples returns the integration step count so far.
func (m *Meter) Samples() int { return m.samples }

// Len returns the tenant count.
func (m *Meter) Len() int { return len(m.tenants) }

// Tenant returns the i-th tenant bucket by value (allocation-free
// access for per-step metric mirrors).
func (m *Meter) Tenant(i int) TenantEnergy { return m.tenants[i] }

// Tenants returns a copy of the per-tenant buckets in meter order.
func (m *Meter) Tenants() []TenantEnergy {
	out := make([]TenantEnergy, len(m.tenants))
	copy(out, m.tenants)
	return out
}

// Report snapshots the meter into a self-contained summary.
func (m *Meter) Report() *Report {
	return &Report{Tenants: m.Tenants(), TotalJ: m.totalJ, Samples: m.samples}
}

package attrib

import (
	"math"
	"testing"

	"github.com/spear-repro/magus/internal/workload"
)

func TestNewMeterValidation(t *testing.T) {
	for name, names := range map[string][]string{
		"empty":     nil,
		"anonymous": {"a", ""},
		"duplicate": {"a", "a"},
	} {
		if _, err := NewMeter(names); err == nil {
			t.Errorf("NewMeter accepted %s tenant list", name)
		}
	}
	if _, err := NewMeter([]string{"a", "b"}); err != nil {
		t.Fatalf("valid names rejected: %v", err)
	}
}

// TestMeterExactRegime: with an exclusive owner every joule lands in
// the owner's exact bucket, bit-identical to the independent total.
func TestMeterExactRegime(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := []workload.TenantShare{
		{Tenant: "a", SMShare: 0.5, MemShare: 30, Exclusive: true},
		{Tenant: "b"},
	}
	for i := 0; i < 1000; i++ {
		m.Accumulate(0.001, 137.5, 212.25, shares)
	}
	r := m.Report()
	a, b := r.Tenants[0], r.Tenants[1]
	if a.EstimatedJ != 0 || a.EstimatedS != 0 {
		t.Fatalf("exclusive owner has estimated energy: %+v", a)
	}
	if a.Estimated() {
		t.Fatal("exclusive owner labelled estimated")
	}
	if b.TotalJ() != 0 {
		t.Fatalf("idle tenant billed %v J", b.TotalJ())
	}
	// Exact attribution uses the same expression as the total
	// accumulator, so the balance here is bit-exact, not just ulp-close.
	if a.ExactJ != r.TotalJ {
		t.Fatalf("exact joules %v != total %v", a.ExactJ, r.TotalJ)
	}
	if !r.Balanced(0) {
		t.Fatal("exact regime not balanced at zero tolerance")
	}
}

// TestMeterEstimatedRegime: concurrent tenants split socket energy by
// memory share and GPU energy by SM share, labelled estimated, and the
// split balances within the report's own ulp tolerance.
func TestMeterEstimatedRegime(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := []workload.TenantShare{
		{Tenant: "a", SMShare: 0.6, MemShare: 30},
		{Tenant: "b", SMShare: 0.2, MemShare: 10},
	}
	const cpuW, gpuW, dt = 100.0, 200.0, 0.001
	steps := 5000
	for i := 0; i < steps; i++ {
		m.Accumulate(dt, cpuW, gpuW, shares)
	}
	r := m.Report()
	a, b := r.Tenants[0], r.Tenants[1]
	if !a.Estimated() || !b.Estimated() {
		t.Fatal("concurrent tenants not labelled estimated")
	}
	if a.ExactJ != 0 || b.ExactJ != 0 {
		t.Fatal("concurrent step charged exact energy")
	}
	// a has 3/4 of memory traffic and 3/4 of SM: expect 3/4 of both.
	wantA := (cpuW*0.75 + gpuW*0.75) * dt * float64(steps)
	if math.Abs(a.TotalJ()-wantA) > 1e-9*wantA {
		t.Fatalf("tenant a billed %v J, want %v", a.TotalJ(), wantA)
	}
	if !r.Balanced(r.BalanceTol()) {
		t.Fatalf("estimated regime imbalance %v beyond tol", math.Abs(r.SumJ()-r.TotalJ))
	}
}

// TestMeterEvenSplit: all-zero weights (both tenants idle but jointly
// keeping the node awake) split evenly rather than dividing by zero.
func TestMeterEvenSplit(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := []workload.TenantShare{{Tenant: "a"}, {Tenant: "b"}}
	m.Accumulate(1.0, 40, 60, shares)
	r := m.Report()
	if r.Tenants[0].EstimatedJ != 50 || r.Tenants[1].EstimatedJ != 50 {
		t.Fatalf("idle split = %v / %v, want 50/50",
			r.Tenants[0].EstimatedJ, r.Tenants[1].EstimatedJ)
	}
	if !r.Balanced(r.BalanceTol()) {
		t.Fatal("even split not balanced")
	}
}

// TestMeterMixedRegimes: alternating exclusive and shared steps keep
// the invariant and count seconds into the right regime buckets.
func TestMeterMixedRegimes(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	excl := []workload.TenantShare{
		{Tenant: "a", MemShare: 10, SMShare: 0.5, Exclusive: true},
		{Tenant: "b"},
	}
	shared := []workload.TenantShare{
		{Tenant: "a", MemShare: 10, SMShare: 0.5},
		{Tenant: "b", MemShare: 10, SMShare: 0.5},
	}
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			m.Accumulate(0.001, 120, 80, excl)
		} else {
			m.Accumulate(0.001, 120, 80, shared)
		}
	}
	r := m.Report()
	a := r.Tenants[0]
	if math.Abs(a.ExactS-1.0) > 1e-9 || math.Abs(a.EstimatedS-1.0) > 1e-9 {
		t.Fatalf("regime seconds = exact %v / est %v, want 1.0 each", a.ExactS, a.EstimatedS)
	}
	if !r.Balanced(r.BalanceTol()) {
		t.Fatalf("mixed regimes imbalance %v beyond tol %v ulps",
			math.Abs(r.SumJ()-r.TotalJ), r.BalanceTol())
	}
}

// TestMeterZeroDt: non-positive steps are ignored entirely.
func TestMeterZeroDt(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := []workload.TenantShare{{Tenant: "a", Exclusive: true}, {Tenant: "b"}}
	m.Accumulate(0, 100, 100, shares)
	m.Accumulate(-1, 100, 100, shares)
	if m.Samples() != 0 || m.TotalJ() != 0 {
		t.Fatalf("non-positive dt accumulated: samples=%d totalJ=%v", m.Samples(), m.TotalJ())
	}
}

// TestMeterAccumulateNoAlloc pins the per-step attribution cost.
func TestMeterAccumulateNoAlloc(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	shares := []workload.TenantShare{
		{Tenant: "a", MemShare: 10, SMShare: 0.5},
		{Tenant: "b", MemShare: 5, SMShare: 0.3},
	}
	avg := testing.AllocsPerRun(200, func() {
		m.Accumulate(0.001, 100, 200, shares)
	})
	if avg != 0 {
		t.Fatalf("Accumulate allocates %.1f times per step", avg)
	}
}

func TestMeterUnknownTenantPanics(t *testing.T) {
	m, err := NewMeter([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown tenant label did not panic")
		}
	}()
	m.Accumulate(0.001, 1, 1, []workload.TenantShare{{Tenant: "ghost", Exclusive: true}})
}

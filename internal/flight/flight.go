// Package flight implements a bounded in-memory flight recorder: a
// fixed-capacity ring of recent run events (governor decisions,
// sensor-health transitions, fault injections, lifecycle marks) that
// overwrites its oldest entry when full. Recording is zero-alloc and
// cheap enough to stay armed on every run — the value of a flight
// recorder is that it is *already on* when something goes wrong.
//
// The ring is the postmortem complement to the obs event log: the
// event log is a complete, append-only stream an operator opts into;
// the ring is a small always-on tail that the serve layer dumps (via
// internal/safeio, as JSONL and a Perfetto-loadable trace) when a
// session panics, when magusd receives SIGQUIT, or on demand from
// GET /debug/flight.
package flight

import "sync"

// Kind classifies a flight record.
type Kind uint8

const (
	// KindMark is a lifecycle annotation (run start/finish, dump).
	KindMark Kind = iota
	// KindDecision is one governor decision (A=value, B=target/socket).
	KindDecision
	// KindHealth is a sensor-health transition (A=from, B=to).
	KindHealth
	// KindFault is a fault-injection tally change (A=total injected).
	KindFault
	// KindPanic marks a contained panic (recorded just before dump).
	KindPanic
)

var kindNames = [...]string{"mark", "decision", "health", "fault", "panic"}

// String returns the stable lowercase name used in dump files.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Record is one fixed-size flight entry. Tag must be a constant (or
// otherwise retained) string so recording never allocates; A/B/C are
// kind-specific scalar payloads.
type Record struct {
	// Seq is the 1-based global sequence number of the record; gaps
	// never occur, so Seq of the oldest retained record reveals how
	// many were overwritten.
	Seq uint64
	// T is the virtual run time in seconds at which the event fired.
	T float64
	// Kind classifies the record; Tag names the specific event.
	Kind Kind
	Tag  string
	// A, B, C are kind-specific payloads (see Kind docs).
	A, B, C float64
}

// Ring is a fixed-capacity overwrite-oldest flight recorder. A nil
// *Ring is valid and records nothing, so call sites stay unconditional
// on the hot path. Rings are safe for concurrent use: the serve layer
// dumps a session's ring from the HTTP goroutine while the session
// steps on another.
type Ring struct {
	mu  sync.Mutex
	rec []Record
	seq uint64 // total records ever written
}

// DefaultCap is the ring capacity used when callers pass cap <= 0:
// enough to hold the recent decision history of a misbehaving run
// (~256 decisions ≈ 25 s of 100 ms governor ticks) without holding
// more than ~16 KiB per session.
const DefaultCap = 256

// NewRing returns a ring holding the most recent cap records
// (DefaultCap when cap <= 0).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Ring{rec: make([]Record, 0, cap)}
}

// Record appends one entry, overwriting the oldest when full. It is a
// no-op on a nil ring and performs no allocation once the ring has
// filled (the backing array is preallocated; growth is append into
// existing capacity).
func (r *Ring) Record(t float64, kind Kind, tag string, a, b, c float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	rec := Record{Seq: r.seq, T: t, Kind: kind, Tag: tag, A: a, B: b, C: c}
	if len(r.rec) < cap(r.rec) {
		r.rec = append(r.rec, rec)
	} else {
		r.rec[(r.seq-1)%uint64(cap(r.rec))] = rec
	}
	r.mu.Unlock()
}

// Len reports how many records are currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rec)
}

// Recorded reports how many records were ever written (retained plus
// overwritten).
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped reports how many records have been overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(len(r.rec))
}

// Snapshot returns the retained records oldest-first. The copy is
// taken under the lock, so a snapshot is a consistent prefix-free
// window even while the run keeps recording.
func (r *Ring) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.rec))
	if len(r.rec) < cap(r.rec) {
		copy(out, r.rec)
		return out
	}
	// Full ring: the slot after the newest record is the oldest.
	head := int(r.seq % uint64(cap(r.rec)))
	n := copy(out, r.rec[head:])
	copy(out[n:], r.rec[:head])
	return out
}

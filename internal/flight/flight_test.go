package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(float64(i), KindDecision, "d", float64(i), 0, 0)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Recorded() != 10 || r.Dropped() != 6 {
		t.Fatalf("recorded/dropped = %d/%d, want 10/6", r.Recorded(), r.Dropped())
	}
	snap := r.Snapshot()
	for i, rec := range snap {
		want := uint64(7 + i)
		if rec.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first, newest retained)", i, rec.Seq, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Record(0.1, KindMark, "start", 0, 0, 0)
	r.Record(0.2, KindHealth, "degraded", 1, 2, 0)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Tag != "start" || snap[1].Tag != "degraded" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestNilRingSafe(t *testing.T) {
	var r *Ring
	r.Record(1, KindPanic, "x", 0, 0, 0)
	if r.Len() != 0 || r.Recorded() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must be inert")
	}
	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf, "nil"); err != nil {
		t.Fatalf("nil dump: %v", err)
	}
}

func TestDumpJSONLParses(t *testing.T) {
	r := NewRing(3)
	r.Record(0.1, KindDecision, "uncore_set", 1.8, 0, 0)
	r.Record(0.2, KindFault, "pcm_stale", 1, 0, 0)
	r.Record(0.3, KindPanic, "panic", 0, 0, 0)
	r.Record(0.4, KindMark, "dump", 0, 0, 0)
	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf, "test-session"); err != nil {
		t.Fatalf("dump: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 retained
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header parse: %v", err)
	}
	if hdr["flight"] != "v1" || hdr["dropped"] != float64(1) || hdr["source"] != "test-session" {
		t.Fatalf("header = %v", hdr)
	}
	for _, ln := range lines[1:] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("record parse: %v (%s)", err, ln)
		}
		if rec["kind"] == "" || rec["seq"] == nil {
			t.Fatalf("record missing fields: %s", ln)
		}
	}
	// Last retained record is the dump mark; the panic precedes it.
	if !strings.Contains(lines[2], `"kind":"panic"`) {
		t.Fatalf("expected panic record at line 3: %s", lines[2])
	}
}

func TestDumpPerfettoParses(t *testing.T) {
	r := NewRing(2)
	r.Record(1.5, KindDecision, "uncore_set", 2.2, 1, 0)
	var buf bytes.Buffer
	if err := r.DumpPerfetto(&buf, "s-1"); err != nil {
		t.Fatalf("dump: %v", err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("perfetto parse: %v", err)
	}
	var found bool
	for _, ev := range tr.TraceEvents {
		if ev["name"] == "uncore_set" && ev["ph"] == "i" && ev["ts"] == 1.5e6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("instant event not found in %s", buf.String())
	}
}

func TestConcurrentRecordAndDump(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			r.Record(float64(i), KindDecision, "d", float64(i), 0, 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.DumpJSONL(&buf, "race"); err != nil {
				t.Errorf("dump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// Every snapshot must be contiguous in Seq.
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("non-contiguous snapshot at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestRecordZeroAllocWhenFull(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 16; i++ {
		r.Record(float64(i), KindMark, "fill", 0, 0, 0)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(1, KindDecision, "uncore_set", 1.2, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates on a full ring: %v allocs/op", allocs)
	}
}

// BenchmarkHotPathFlightRecord pins the per-event recording cost;
// cmd/benchgate holds it to 0 allocs/op via BENCH_hotpath.json.
func BenchmarkHotPathFlightRecord(b *testing.B) {
	r := NewRing(DefaultCap)
	b.ReportAllocs()
	// Exclude NewRing's allocations: at -benchtime=1x the CI gate
	// divides by N=1, so setup cost must not count as per-op.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(float64(i), KindDecision, "uncore_set", 1.6, 0, 0)
	}
}

package flight

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonlHeader is the first line of every JSONL dump; consumers (and
// cmd/flightlint) key on Flight == "v1".
type jsonlHeader struct {
	Flight   string `json:"flight"`
	Source   string `json:"source,omitempty"`
	Cap      int    `json:"cap"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// jsonlRecord is the wire form of one record.
type jsonlRecord struct {
	Seq  uint64  `json:"seq"`
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Tag  string  `json:"tag"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	C    float64 `json:"c"`
}

// DumpJSONL writes the ring as JSON Lines: one header object
// (flight=v1, capacity, recorded/dropped totals) followed by one
// object per retained record, oldest first. The dump path is cold, so
// it uses encoding/json; recording stays allocation-free.
func (r *Ring) DumpJSONL(w io.Writer, source string) error {
	recs := r.Snapshot()
	enc := json.NewEncoder(w)
	hdr := jsonlHeader{Flight: "v1", Source: source, Cap: r.capOrZero(), Recorded: r.Recorded(), Dropped: r.Dropped()}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := enc.Encode(jsonlRecord{
			Seq: rec.Seq, T: rec.T, Kind: rec.Kind.String(), Tag: rec.Tag,
			A: rec.A, B: rec.B, C: rec.C,
		}); err != nil {
			return err
		}
	}
	return nil
}

func (r *Ring) capOrZero() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.rec)
}

// perfettoEvent is one Chrome/Perfetto trace event. Records render as
// instant events ("ph":"i") on one thread per kind, with virtual run
// time mapped to microseconds.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the top-level Chrome trace JSON object.
type perfettoTrace struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// DumpPerfetto writes the ring as a Chrome trace-event JSON file that
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly: each
// record is an instant event at its virtual timestamp, grouped into
// one track per kind.
func (r *Ring) DumpPerfetto(w io.Writer, source string) error {
	recs := r.Snapshot()
	tr := perfettoTrace{DisplayTimeUnit: "ms", TraceEvents: make([]perfettoEvent, 0, len(recs)+len(kindNames))}
	for k, name := range kindNames {
		tr.TraceEvents = append(tr.TraceEvents, perfettoEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: k + 1,
			Args: map[string]any{"name": fmt.Sprintf("flight:%s %s", name, source)},
		})
	}
	for _, rec := range recs {
		tr.TraceEvents = append(tr.TraceEvents, perfettoEvent{
			Name: rec.Tag, Phase: "i", TS: rec.T * 1e6, PID: 1, TID: int(rec.Kind) + 1, Scope: "t",
			Args: map[string]any{"seq": rec.Seq, "a": rec.A, "b": rec.B, "c": rec.C},
		})
	}
	return json.NewEncoder(w).Encode(tr)
}

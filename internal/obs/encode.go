package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*. Names beginning with __ are reserved.
func ValidLabelName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) < 2 || s[:2] != "__"
}

// AppendEscapedLabelValue appends s to dst with the exposition-format
// label escapes applied: backslash, double quote and newline become
// \\, \" and \n. Every other byte passes through verbatim (the format
// is otherwise 8-bit clean).
func AppendEscapedLabelValue(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// EscapeLabelValue returns s with exposition-format label escaping.
func EscapeLabelValue(s string) string {
	return string(AppendEscapedLabelValue(nil, s))
}

// appendEscapedHelp escapes a HELP string: backslash and newline only
// (quotes are legal in help text).
func appendEscapedHelp(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendValue formats a sample value the way Prometheus expects:
// shortest round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func appendValue(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, +1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendLabels appends {a="x",b="y"} for parallel name/value slices,
// plus an optional trailing le label (used by histogram buckets, with
// leVal the pre-formatted bound). Emits nothing for zero labels.
func appendLabels(dst []byte, names, values []string, le string) []byte {
	if len(names) == 0 && le == "" {
		return dst
	}
	dst = append(dst, '{')
	for i, n := range names {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, n...)
		dst = append(dst, '=', '"')
		dst = AppendEscapedLabelValue(dst, values[i])
		dst = append(dst, '"')
	}
	if le != "" {
		if len(names) > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `le="`...)
		dst = append(dst, le...)
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// appendFamily renders one family in canonical order (children sorted
// by label values).
func (f *family) append(dst []byte) []byte {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if f.help != "" {
		dst = append(dst, "# HELP "...)
		dst = append(dst, f.name...)
		dst = append(dst, ' ')
		dst = appendEscapedHelp(dst, f.help)
		dst = append(dst, '\n')
	}
	dst = append(dst, "# TYPE "...)
	dst = append(dst, f.name...)
	dst = append(dst, ' ')
	dst = append(dst, f.kind.String()...)
	dst = append(dst, '\n')

	for _, k := range keys {
		c := f.children[k]
		switch inst := c.inst.(type) {
		case *Counter:
			dst = append(dst, f.name...)
			dst = appendLabels(dst, f.labels, c.labelValues, "")
			dst = append(dst, ' ')
			dst = appendValue(dst, inst.Value())
			dst = append(dst, '\n')
		case *Gauge:
			dst = append(dst, f.name...)
			dst = appendLabels(dst, f.labels, c.labelValues, "")
			dst = append(dst, ' ')
			dst = appendValue(dst, inst.Value())
			dst = append(dst, '\n')
		case *Histogram:
			var cum uint64
			for i := 0; i <= len(inst.bounds); i++ {
				cum += inst.counts[i].Load()
				le := "+Inf"
				if i < len(inst.bounds) {
					le = string(appendValue(nil, inst.bounds[i]))
				}
				dst = append(dst, f.name...)
				dst = append(dst, "_bucket"...)
				dst = appendLabels(dst, f.labels, c.labelValues, le)
				dst = append(dst, ' ')
				dst = strconv.AppendUint(dst, cum, 10)
				dst = append(dst, '\n')
			}
			dst = append(dst, f.name...)
			dst = append(dst, "_sum"...)
			dst = appendLabels(dst, f.labels, c.labelValues, "")
			dst = append(dst, ' ')
			dst = appendValue(dst, inst.Sum())
			dst = append(dst, '\n')
			dst = append(dst, f.name...)
			dst = append(dst, "_count"...)
			dst = appendLabels(dst, f.labels, c.labelValues, "")
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, inst.Count(), 10)
			dst = append(dst, '\n')
		}
	}
	f.mu.RUnlock()
	return dst
}

// AppendText appends the registry's full exposition to dst in
// canonical order: families sorted by name, children by label values.
func (r *Registry) AppendText(dst []byte) []byte {
	if r == nil {
		return dst
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		dst = f.append(dst)
	}
	return dst
}

// WriteText writes the exposition to w.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := w.Write(r.AppendText(nil))
	return err
}

// Text returns the exposition as a string.
func (r *Registry) Text() string { return string(r.AppendText(nil)) }

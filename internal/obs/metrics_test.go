package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Counters only move forward: negative and NaN increments drop.
	c.Add(-1)
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter moved backward: %v", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %v, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 5.1, 100, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", h.Count())
	}
	if got := h.Sum(); got != 0.5+1+3+5.1+100 {
		t.Fatalf("sum = %v", got)
	}
	text := r.Text()
	// Buckets are cumulative: ≤1 holds {0.5, 1}, ≤5 adds {3}, ≤10 adds
	// {5.1}, +Inf adds {100}.
	for _, line := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="5"} 3`,
		`h_bucket{le="10"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_count 5`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestHistogramBucketNormalisation(t *testing.T) {
	r := NewRegistry()
	// Unsorted, duplicated, +Inf-carrying bounds normalise to {1, 2, 5}.
	r.Histogram("h", "", []float64{5, 1, 2, 2, math.Inf(1)}).Observe(1.5)
	text := r.Text()
	i1 := strings.Index(text, `le="1"`)
	i2 := strings.Index(text, `le="2"`)
	i5 := strings.Index(text, `le="5"`)
	if i1 < 0 || i2 < 0 || i5 < 0 || !(i1 < i2 && i2 < i5) {
		t.Fatalf("bounds not sorted/deduplicated:\n%s", text)
	}
	if strings.Count(text, `le="2"`) != 1 {
		t.Fatalf("duplicate bound survived:\n%s", text)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help").Inc()
	// Re-registration with the same schema returns the same instrument —
	// repeated runs sharing a registry accumulate.
	r.Counter("c", "help").Inc()
	if got := r.Counter("c", "help").Value(); got != 2 {
		t.Fatalf("re-registered counter = %v, want 2", got)
	}
	v := r.GaugeVec("gv", "", "a")
	v.With("x").Set(1)
	if got := r.GaugeVec("gv", "", "a").With("x").Value(); got != 1 {
		t.Fatalf("re-registered vec lost child: %v", got)
	}
}

func TestRegistrySchemaMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.Counter("m", ""); r.Gauge("m", "") }},
		{"labels", func(r *Registry) { r.CounterVec("m", "", "a"); r.CounterVec("m", "", "b") }},
		{"buckets", func(r *Registry) {
			r.Histogram("m", "", []float64{1})
			r.Histogram("m", "", []float64{2})
		}},
		{"bad-name", func(r *Registry) { r.Counter("1bad", "") }},
		{"bad-label", func(r *Registry) { r.CounterVec("m", "", "bad-label") }},
		{"label-arity", func(r *Registry) { r.CounterVec("m", "", "a").With("x", "y") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "", "l")
	v.With("x").Inc()
	v.With("x").Inc()
	v.With("y").Inc()
	if got := v.With("x").Value(); got != 2 {
		t.Fatalf("child x = %v, want 2", got)
	}
	if got := v.With("y").Value(); got != 1 {
		t.Fatalf("child y = %v, want 1", got)
	}
}

func TestFamiliesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz", "")
	r.Gauge("aa", "")
	r.Histogram("mm", "", nil)
	got := r.Families()
	want := []string{"aa", "mm", "zz"}
	if len(got) != len(want) {
		t.Fatalf("families = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("families = %v, want %v", got, want)
		}
	}
}

// TestNilSafety is the contract the instrumentation sites rely on: every
// method on every type tolerates a nil receiver.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Counter("c", "").Add(1)
	if r.Counter("c", "").Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	r.Gauge("g", "").Set(1)
	r.Gauge("g", "").Add(1)
	r.Histogram("h", "", nil).Observe(1)
	if r.Histogram("h", "", nil).Count() != 0 || r.Histogram("h", "", nil).Sum() != 0 {
		t.Fatal("nil histogram has state")
	}
	r.CounterVec("cv", "", "l").With("x").Inc()
	r.GaugeVec("gv", "", "l").With("x").Set(1)
	r.HistogramVec("hv", "", nil, "l").With("x").Observe(1)
	if r.Families() != nil {
		t.Fatal("nil registry has families")
	}
	if out := r.AppendText([]byte("x")); string(out) != "x" {
		t.Fatalf("nil AppendText altered dst: %q", out)
	}
	if r.Text() != "" {
		t.Fatal("nil registry has text")
	}

	var o *Observer
	o.SetHealth(Lost)
	if o.Health() != Healthy {
		t.Fatal("nil observer not healthy")
	}
	if o.Registry() != nil || o.Events() != nil {
		t.Fatal("nil observer has state")
	}

	var l *EventLog
	l.Event(0, "x").F("a", 1).U("b", 2).S("c", "d").B("e", true).End()
	if l.Count() != 0 || l.Err() != nil {
		t.Fatal("nil event log has state")
	}
	if NewEventLog(nil) != nil {
		t.Fatal("NewEventLog(nil) should be nil")
	}
}

func TestObserverHealth(t *testing.T) {
	o := New(nil, nil)
	if o.Health() != Healthy {
		t.Fatalf("initial health %v", o.Health())
	}
	o.SetHealth(Degraded)
	if o.Health() != Degraded {
		t.Fatalf("health %v, want degraded", o.Health())
	}
	o.SetHealth(Lost)
	if got := o.Health().String(); got != "lost" {
		t.Fatalf("health string %q", got)
	}
	if Healthy.String() != "healthy" || Degraded.String() != "degraded" {
		t.Fatal("health state names")
	}
	if o.Registry() == nil {
		t.Fatal("New(nil, nil) should allocate a registry")
	}
}

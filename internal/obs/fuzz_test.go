package obs

import (
	"regexp"
	"strings"
	"testing"
)

// FuzzLabelValueEscaping proves the exposition escaping is lossless and
// line-safe for arbitrary byte strings: unescape(escape(s)) == s, and
// the escaped form never carries a raw newline or unescaped quote that
// would corrupt the line-oriented format.
func FuzzLabelValueEscaping(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `back\slash`, `qu"ote`, "new\nline", `\\\"`, "\x00\x01\xff",
		"héllo ☃", strings.Repeat(`\`, 7), `trailing\`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeLabelValue(s)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escaped form of %q contains raw newline: %q", s, esc)
		}
		got, err := unescapeLabelValue(esc)
		if err != nil {
			t.Fatalf("escape produced malformed output for %q: %q: %v", s, esc, err)
		}
		if got != s {
			t.Fatalf("round trip lost data: %q -> %q -> %q", s, esc, got)
		}
	})
}

// FuzzExpositionWithHostileLabels feeds arbitrary label values through a
// real registry and validates the full rendered exposition: whatever the
// input, the output must stay parseable, and the value must survive a
// parse→unescape round trip.
func FuzzExpositionWithHostileLabels(f *testing.F) {
	for _, seed := range []string{"a100", `pcm "loss"`, "multi\nline", `C:\dev\msr`, ""} {
		f.Add(seed, 42.5)
	}
	f.Fuzz(func(t *testing.T, labelValue string, v float64) {
		r := NewRegistry()
		r.GaugeVec("magus_run_info", "Run identity.", "workload").With(labelValue).Set(v)
		r.CounterVec("magus_faults_injected_total", "Faults.", "class").With(labelValue).Inc()
		text := r.Text()
		if n := checkExposition(t, text); n != 2 {
			t.Fatalf("expected 2 samples, got %d:\n%s", n, text)
		}
		// The hostile value must be recoverable from the output.
		start := strings.Index(text, `workload="`)
		if start < 0 {
			t.Fatalf("label missing:\n%s", text)
		}
		rest := text[start+len(`workload="`):]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("unterminated label value:\n%s", text)
		}
		got, err := unescapeLabelValue(rest[:end])
		if err != nil || got != labelValue {
			t.Fatalf("label value %q rendered unrecoverably as %q (%v)", labelValue, rest[:end], err)
		}
	})
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// FuzzNameValidation checks the hand-rolled validators against the
// Prometheus grammar expressed as regular expressions.
func FuzzNameValidation(f *testing.F) {
	for _, seed := range []string{"", "a", "9a", "_ok", "__reserved", "a:b", "a-b", "é", "a\x00b"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if got, want := ValidMetricName(s), metricNameRe.MatchString(s); got != want {
			t.Fatalf("ValidMetricName(%q) = %v, regexp says %v", s, got, want)
		}
		wantLabel := labelNameRe.MatchString(s) && !strings.HasPrefix(s, "__")
		if got := ValidLabelName(s); got != wantLabel {
			t.Fatalf("ValidLabelName(%q) = %v, reference says %v", s, got, wantLabel)
		}
	})
}

package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg) // idempotent: same family, same child

	text := reg.Text()
	if !strings.Contains(text, "# TYPE magus_build_info gauge") {
		t.Fatalf("family missing:\n%s", text)
	}
	if n := strings.Count(text, "magus_build_info{"); n != 1 {
		t.Fatalf("%d magus_build_info samples, want 1:\n%s", n, text)
	}
	// The test binary always carries a Go toolchain version.
	if !strings.Contains(text, `goversion="go`) {
		t.Errorf("goversion label not populated:\n%s", text)
	}
	for _, label := range []string{`version="`, `revision="`} {
		if !strings.Contains(text, label) {
			t.Errorf("label %s missing:\n%s", label, text)
		}
	}
	if !strings.Contains(text, "} 1\n") {
		t.Errorf("build info gauge not set to 1:\n%s", text)
	}
}

// The daemon surface publishes build identity on its registry, so a
// plain /metrics scrape names the binary.
func TestHandlerServesBuildInfo(t *testing.T) {
	o := New(nil, nil)
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "magus_build_info{") {
		t.Fatalf("/metrics missing magus_build_info:\n%s", body)
	}
}

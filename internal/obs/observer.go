package obs

import (
	"io"
	"sync/atomic"
)

// Health mirrors the resilient layer's sensor state machine
// (healthy → degraded → lost) without importing it, so the HTTP
// handler and the registry stay dependency-free. The numeric values
// match resilient.Health.
type Health int32

// Health states.
const (
	Healthy Health = iota
	Degraded
	Lost
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Lost:
		return "lost"
	default:
		return "healthy"
	}
}

// Observer bundles the three observability surfaces a run feeds: the
// metrics registry, the structured event log, and an atomically
// published health state for /healthz. A nil observer (and any part of
// one) is a no-op, so instrumented code paths run unguarded.
type Observer struct {
	reg    *Registry
	events *EventLog
	health atomic.Int32
}

// New returns an observer over reg (nil = a fresh registry) and an
// optional JSONL event sink (nil = events discarded).
func New(reg *Registry, events io.Writer) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{reg: reg, events: NewEventLog(events)}
}

// Registry returns the metrics registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Events returns the event log (nil when disabled).
func (o *Observer) Events() *EventLog {
	if o == nil {
		return nil
	}
	return o.events
}

// SetHealth publishes the current sensor health for /healthz readers.
func (o *Observer) SetHealth(h Health) {
	if o == nil {
		return
	}
	o.health.Store(int32(h))
}

// Health returns the last published health state (Healthy when none
// was ever published).
func (o *Observer) Health() Health {
	if o == nil {
		return Healthy
	}
	return Health(o.health.Load())
}

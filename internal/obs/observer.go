package obs

import (
	"io"
	"sync"
	"sync/atomic"
)

// Health mirrors the resilient layer's sensor state machine
// (healthy → degraded → lost) without importing it, so the HTTP
// handler and the registry stay dependency-free. The numeric values
// match resilient.Health.
type Health int32

// Health states.
const (
	Healthy Health = iota
	Degraded
	Lost
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Lost:
		return "lost"
	default:
		return "healthy"
	}
}

// Observer bundles the three observability surfaces a run feeds: the
// metrics registry, the structured event log, and an atomically
// published health state for /healthz. A nil observer (and any part of
// one) is a no-op, so instrumented code paths run unguarded.
type Observer struct {
	reg    *Registry
	events *EventLog
	health atomic.Int32

	pageMu sync.RWMutex
	pages  map[string]PageFunc
}

// Options configures observer construction beyond New's positional
// arguments. The zero value reproduces New exactly.
type Options struct {
	// MaxEvents bounds the JSONL event log for long-running daemons:
	// after MaxEvents emitted events the log writes one terminal
	// "events_truncated" record and counts (EventLog.Dropped) instead
	// of writing. 0 = unbounded, byte-identical to the historical
	// stream.
	MaxEvents uint64
}

// New returns an observer over reg (nil = a fresh registry) and an
// optional JSONL event sink (nil = events discarded).
func New(reg *Registry, events io.Writer) *Observer {
	return NewWith(reg, events, Options{})
}

// NewWith is New with explicit Options.
func NewWith(reg *Registry, events io.Writer, opt Options) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	log := NewEventLog(events)
	if opt.MaxEvents > 0 {
		log.SetMaxEvents(opt.MaxEvents)
	}
	return &Observer{reg: reg, events: log}
}

// PageFunc renders one auxiliary status page (the /fleet distribution
// snapshot, the /debug/flight dump). It is called at request time, so
// pages registered after the HTTP handler was built are still served.
type PageFunc func() (contentType string, body []byte, err error)

// SetPage registers (or, nil fn, removes) the page served under name.
// Known names are routed by NewHandler; unknown names are inert.
func (o *Observer) SetPage(name string, fn PageFunc) {
	if o == nil {
		return
	}
	o.pageMu.Lock()
	if o.pages == nil {
		o.pages = make(map[string]PageFunc)
	}
	if fn == nil {
		delete(o.pages, name)
	} else {
		o.pages[name] = fn
	}
	o.pageMu.Unlock()
}

// Page returns the registered page renderer for name (nil when unset).
func (o *Observer) Page(name string) PageFunc {
	if o == nil {
		return nil
	}
	o.pageMu.RLock()
	defer o.pageMu.RUnlock()
	return o.pages[name]
}

// Registry returns the metrics registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Events returns the event log (nil when disabled).
func (o *Observer) Events() *EventLog {
	if o == nil {
		return nil
	}
	return o.events
}

// SetHealth publishes the current sensor health for /healthz readers.
func (o *Observer) SetHealth(h Health) {
	if o == nil {
		return
	}
	o.health.Store(int32(h))
}

// Health returns the last published health state (Healthy when none
// was ever published).
func (o *Observer) Health() Health {
	if o == nil {
		return Healthy
	}
	return Health(o.health.Load())
}

// Package obs is the zero-dependency observability layer of the MAGUS
// reproduction: a concurrency-safe metrics registry (counters, gauges,
// histograms, labeled families) with Prometheus text-exposition
// encoding, a structured JSONL event log for governor decisions, and an
// HTTP handler serving /metrics, a degradation-aware /healthz and the
// standard pprof surface.
//
// Two properties the rest of the repo relies on:
//
//   - Nil safety: every method on every type tolerates a nil receiver
//     and becomes a no-op, so instrumentation sites never need to guard
//     "is observability enabled?" — an unobserved run executes the exact
//     same simulation code and stays bit-identical to the seed.
//   - Determinism: instruments are passive (they only record what the
//     simulation already computed) and encoding is canonically ordered
//     (families sorted by name, children by label values), so a seeded
//     run produces byte-stable exposition output and event streams.
//
// Instruments store their state in atomics; Inc/Add/Set/Observe are
// safe from any goroutine and allocation-free on the hot path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic Add/Store/Load, the storage
// cell behind every instrument.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value. Negative or NaN
// increments are ignored — a counter can only count forward.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v < 0 or NaN is dropped).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	c.v.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add increases (or, negative v, decreases) the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.Add(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: each bucket counts observations ≤ its upper bound, with a
// +Inf catch-all).
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one sample (NaN is dropped).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records n identical samples in one update — the bulk fold
// used when a pre-aggregated distribution (a quantile sketch bucket)
// is re-exposed as a histogram. Equivalent to calling Observe(v) n
// times, at O(1) cost.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.sum.Add(v * float64(n))
	h.count.Add(n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// kind discriminates family types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one labeled instrument inside a family.
type child struct {
	labelValues []string
	inst        any // *Counter | *Gauge | *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
}

// childKey encodes label values into a map key; 0x00 cannot appear in
// the middle of a UTF-8 rune, so the join is unambiguous for any input.
func childKey(values []string) string { return strings.Join(values, "\x00") }

// get returns the instrument for values, creating it on first use.
func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c.inst
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c.inst
	}
	var inst any
	switch f.kind {
	case kindCounter:
		inst = &Counter{}
	case kindGauge:
		inst = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		inst = h
	}
	f.children[key] = &child{labelValues: append([]string(nil), values...), inst: inst}
	return inst
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).(*Counter)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).(*Gauge)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues).(*Histogram)
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; a nil
// registry is a no-op source of nil (no-op) instruments.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it on first
// registration. Re-registration with the same schema returns the
// existing family (so repeated runs can share one registry); any
// mismatch in kind, labels or buckets panics — two call sites
// disagreeing about a metric's schema is a programming error.
func (r *Registry) lookup(name, help string, k kind, labels []string, buckets []float64) *family {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !ValidLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s has invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// CounterVec registers (or returns) a counter family with labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// GaugeVec registers (or returns) a gauge family with labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// DefBuckets is the default histogram bucket layout, tuned for the
// sub-second decision periods and double-digit throughputs this repo
// observes.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// normBuckets validates, sorts and deduplicates histogram bounds;
// +Inf bounds are dropped (the catch-all bucket is implicit).
func normBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	out := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsNaN(b) {
			panic("obs: NaN histogram bucket bound")
		}
		if !math.IsInf(b, +1) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, nil, normBuckets(buckets)).get(nil).(*Histogram)
}

// HistogramVec registers (or returns) a histogram family with labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, normBuckets(buckets))}
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// InstrumentState is one instrument's value inside a registry dump.
// Counters and gauges use Value; histograms use the Hist* fields
// (HistCounts holds the per-bucket — non-cumulative — counts including
// the +Inf catch-all).
type InstrumentState struct {
	Family string
	Labels []string
	Kind   string

	Value float64

	HistCounts []uint64
	HistSum    float64
	HistCount  uint64
}

// StateDump captures every instrument's current value in canonical
// order (families sorted by name, children by label values). Family
// schemas are registration wiring, not state: a restore target must
// re-register the same families before RestoreState.
func (r *Registry) StateDump() []InstrumentState {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var out []InstrumentState
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			st := InstrumentState{
				Family: f.name,
				Labels: append([]string(nil), c.labelValues...),
				Kind:   f.kind.String(),
			}
			switch inst := c.inst.(type) {
			case *Counter:
				st.Value = inst.Value()
			case *Gauge:
				st.Value = inst.Value()
			case *Histogram:
				st.HistCounts = make([]uint64, len(inst.counts))
				for i := range inst.counts {
					st.HistCounts[i] = inst.counts[i].Load()
				}
				st.HistSum = inst.Sum()
				st.HistCount = inst.Count()
			}
			out = append(out, st)
		}
		f.mu.RUnlock()
	}
	return out
}

// RestoreState overwrites instrument values from a dump. Every dumped
// family must already be registered with a matching kind; children not
// yet materialised are created on the fly (first-use creation order is
// unobservable — exposition output is canonically sorted).
func (r *Registry) RestoreState(states []InstrumentState) error {
	if r == nil {
		if len(states) > 0 {
			return fmt.Errorf("obs: restore %d instruments into a nil registry", len(states))
		}
		return nil
	}
	for _, st := range states {
		r.mu.RLock()
		f := r.families[st.Family]
		r.mu.RUnlock()
		if f == nil {
			return fmt.Errorf("obs: restore references unregistered family %q", st.Family)
		}
		if f.kind.String() != st.Kind {
			return fmt.Errorf("obs: restore family %q kind %s, registered as %s", st.Family, st.Kind, f.kind)
		}
		if len(st.Labels) != len(f.labels) {
			return fmt.Errorf("obs: restore family %q with %d label values, schema has %d",
				st.Family, len(st.Labels), len(f.labels))
		}
		for _, lv := range st.Labels {
			if strings.ContainsRune(lv, 0) {
				return fmt.Errorf("obs: restore family %q label value contains NUL", st.Family)
			}
		}
		switch inst := f.get(st.Labels).(type) {
		case *Counter:
			inst.v.Store(st.Value)
		case *Gauge:
			inst.v.Store(st.Value)
		case *Histogram:
			if len(st.HistCounts) != len(inst.counts) {
				return fmt.Errorf("obs: restore family %q with %d buckets, schema has %d",
					st.Family, len(st.HistCounts), len(inst.counts))
			}
			for i := range inst.counts {
				inst.counts[i].Store(st.HistCounts[i])
			}
			inst.sum.Store(st.HistSum)
			inst.count.Store(st.HistCount)
		}
	}
	return nil
}

// RestoreCount overwrites the emitted-event counter; the restore path
// uses it so a resumed run's event numbering continues from the
// checkpoint instead of restarting at zero.
func (l *EventLog) RestoreCount(n uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.count = n
	l.mu.Unlock()
}

package obs

import (
	"sync"
	"testing"
)

// TestConcurrentRegistryUse hammers one registry from many goroutines —
// concurrent registration (get-or-create of the same families), child
// creation, instrument updates and text encoding. Run under -race (the
// CI race job does) this proves the scrape path can serve while the
// simulation thread keeps writing.
func TestConcurrentRegistryUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	start := make(chan struct{})

	// Writers: register and bump the same families concurrently.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			labels := []string{"a", "b", "c", "d"}
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", "ops").Inc()
				r.Gauge("level", "level").Set(float64(i))
				r.Histogram("lat_seconds", "latency", []float64{0.1, 1}).Observe(float64(i%3) * 0.3)
				r.CounterVec("ops_by_class_total", "ops by class", "class").
					With(labels[(id+i)%len(labels)]).Inc()
				r.GaugeVec("level_by_class", "level by class", "class").
					With(labels[i%len(labels)]).Add(1)
				r.HistogramVec("lat_by_class_seconds", "latency by class", []float64{0.5}, "class").
					With(labels[i%len(labels)]).Observe(0.25)
			}
		}(w)
	}
	// Readers: encode while the writers run.
	encoded := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters/4; i++ {
				encoded[id] = r.AppendText(encoded[id][:0])
				r.Families()
			}
		}(w)
	}
	close(start)
	wg.Wait()

	if got := r.Counter("ops_total", "ops").Value(); got != workers*iters {
		t.Fatalf("ops_total = %v, want %d (lost updates)", got, workers*iters)
	}
	if got := r.Histogram("lat_seconds", "latency", []float64{0.1, 1}).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	var byClass float64
	for _, l := range []string{"a", "b", "c", "d"} {
		byClass += r.CounterVec("ops_by_class_total", "ops by class", "class").With(l).Value()
	}
	if byClass != workers*iters {
		t.Fatalf("labeled counters sum = %v, want %d", byClass, workers*iters)
	}
	// The final encode must be valid and complete.
	checkExposition(t, r.Text())
}

// TestConcurrentObserverHealth races SetHealth against Health and the
// HTTP-visible exposition.
func TestConcurrentObserverHealth(t *testing.T) {
	o := New(nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.SetHealth(Health(i % 3))
				_ = o.Health()
			}
		}(w)
	}
	wg.Wait()
	if h := o.Health(); h != Healthy && h != Degraded && h != Lost {
		t.Fatalf("health %v out of range", h)
	}
}

package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	o := New(nil, nil)
	o.Registry().Gauge("magus_node_power_watts", "Node power.").Set(226)
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ExpositionContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "magus_node_power_watts 226\n") {
		t.Fatalf("body missing sample:\n%s", body)
	}
	checkExposition(t, string(body))

	// HEAD is allowed, bodyless.
	resp, err = http.Head(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}

	// Anything else is 405.
	resp, err = http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Fatalf("Allow %q", allow)
	}
}

func TestHealthzTransitions(t *testing.T) {
	o := New(nil, nil)
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()

	get := func() (int, string, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header.Get("X-Magus-Health")
	}

	if code, body, hdr := get(); code != http.StatusOK || body != "ok\n" || hdr != "healthy" {
		t.Fatalf("healthy: %d %q %q", code, body, hdr)
	}
	o.SetHealth(Degraded)
	if code, body, hdr := get(); code != http.StatusServiceUnavailable || body != "degraded\n" || hdr != "degraded" {
		t.Fatalf("degraded: %d %q %q", code, body, hdr)
	}
	o.SetHealth(Lost)
	if code, body, hdr := get(); code != http.StatusServiceUnavailable || body != "lost\n" || hdr != "lost" {
		t.Fatalf("lost: %d %q %q", code, body, hdr)
	}
	// Recovery flips it back.
	o.SetHealth(Healthy)
	if code, _, _ := get(); code != http.StatusOK {
		t.Fatalf("recovered: %d", code)
	}
}

func TestPprofEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(nil, nil)))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

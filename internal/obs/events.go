package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// EventLog writes one JSON object per line (JSONL) describing runtime
// events: governor decisions, trend flips, phase transitions, sensor
// health changes, fault injections. Field order is fixed by emission
// order and float formatting is canonical, so a deterministic run
// produces a byte-stable stream.
//
// A nil log is a no-op, as is every builder it hands out, so emission
// sites need no guards. The log is safe for concurrent use; each event
// is written as a single Write call.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	count uint64
	err   error

	// max bounds the number of emitted events (0 = unbounded, the
	// default — existing streams stay byte-identical). Once count
	// reaches max, one terminal "events_truncated" record is written
	// and every further event is counted in dropped instead of
	// written, so a week-long daemon cannot grow the log without
	// bound.
	max       uint64
	dropped   uint64
	truncated bool
}

// NewEventLog returns a log writing JSONL to w (nil w returns a nil,
// no-op log).
func NewEventLog(w io.Writer) *EventLog {
	if w == nil {
		return nil
	}
	return &EventLog{w: w, buf: make([]byte, 0, 256)}
}

// SetMaxEvents bounds the log to max emitted events (0 restores the
// unbounded default). When the bound is reached, the log writes one
// terminal record — {"t":…,"type":"events_truncated","max_events":N}
// — and silently counts (Dropped) every event after it.
func (l *EventLog) SetMaxEvents(max uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.max = max
	l.mu.Unlock()
}

// Bounded reports whether a max-events bound is configured.
func (l *EventLog) Bounded() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max > 0
}

// Dropped returns the number of events discarded after the max-events
// bound was reached (0 for an unbounded log).
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Count returns the number of events emitted so far.
func (l *EventLog) Count() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Err returns the first write error, if any. Emission after an error
// keeps counting but stops writing.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Ev accumulates one event's fields; obtain via Event, finish with
// End. The log's lock is held between the two, so an event is always a
// contiguous line even with concurrent emitters.
type Ev struct{ l *EventLog }

// Event starts an event at virtual time t with the given type. Always
// call End on the result.
func (l *EventLog) Event(t time.Duration, typ string) Ev {
	if l == nil {
		return Ev{}
	}
	l.mu.Lock()
	if l.max > 0 && l.count >= l.max {
		if !l.truncated {
			l.truncated = true
			l.writeTruncation(t)
		}
		l.dropped++
		l.mu.Unlock()
		return Ev{}
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"t":`...)
	// Virtual time advances in engine steps (≥ 1 ms); three decimals
	// render it exactly.
	l.buf = strconv.AppendFloat(l.buf, t.Seconds(), 'f', 3, 64)
	l.buf = append(l.buf, `,"type":`...)
	l.buf = appendJSONString(l.buf, typ)
	return Ev{l: l}
}

// F adds a float64 field (NaN/Inf become null — JSON has no spelling
// for them).
func (e Ev) F(key string, v float64) Ev {
	if e.l == nil {
		return e
	}
	e.l.buf = e.key(key)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		e.l.buf = append(e.l.buf, "null"...)
	} else {
		e.l.buf = strconv.AppendFloat(e.l.buf, v, 'g', -1, 64)
	}
	return e
}

// U adds an unsigned integer field.
func (e Ev) U(key string, v uint64) Ev {
	if e.l == nil {
		return e
	}
	e.l.buf = e.key(key)
	e.l.buf = strconv.AppendUint(e.l.buf, v, 10)
	return e
}

// S adds a string field.
func (e Ev) S(key, v string) Ev {
	if e.l == nil {
		return e
	}
	e.l.buf = e.key(key)
	e.l.buf = appendJSONString(e.l.buf, v)
	return e
}

// B adds a boolean field.
func (e Ev) B(key string, v bool) Ev {
	if e.l == nil {
		return e
	}
	e.l.buf = e.key(key)
	if v {
		e.l.buf = append(e.l.buf, "true"...)
	} else {
		e.l.buf = append(e.l.buf, "false"...)
	}
	return e
}

func (e Ev) key(k string) []byte {
	b := append(e.l.buf, ',')
	b = appendJSONString(b, k)
	return append(b, ':')
}

// End terminates the event line and writes it out.
func (e Ev) End() {
	if e.l == nil {
		return
	}
	e.l.buf = append(e.l.buf, '}', '\n')
	if e.l.err == nil {
		_, e.l.err = e.l.w.Write(e.l.buf)
	}
	e.l.count++
	e.l.mu.Unlock()
}

// writeTruncation emits the terminal truncation record. Called with
// the lock held, at the virtual time of the first dropped event.
func (l *EventLog) writeTruncation(t time.Duration) {
	l.buf = l.buf[:0]
	l.buf = append(l.buf, `{"t":`...)
	l.buf = strconv.AppendFloat(l.buf, t.Seconds(), 'f', 3, 64)
	l.buf = append(l.buf, `,"type":"events_truncated","max_events":`...)
	l.buf = strconv.AppendUint(l.buf, l.max, 10)
	l.buf = append(l.buf, '}', '\n')
	if l.err == nil {
		_, l.err = l.w.Write(l.buf)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Control
// characters are \u-escaped; multi-byte UTF-8 passes through verbatim.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestEventLogMaxEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.SetMaxEvents(3)
	for i := 0; i < 10; i++ {
		l.Event(time.Duration(i)*time.Second, "decision").F("v", float64(i)).End()
	}
	if got := l.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := l.Dropped(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // 3 events + terminal truncation record
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var term map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &term); err != nil {
		t.Fatalf("terminal record parse: %v", err)
	}
	if term["type"] != "events_truncated" || term["max_events"] != float64(3) {
		t.Fatalf("terminal record = %v", term)
	}
	// The truncation record fires at the first dropped event's time.
	if term["t"] != float64(3) {
		t.Fatalf("truncation t = %v, want 3", term["t"])
	}
}

func TestEventLogUnboundedDefaultByteIdentical(t *testing.T) {
	emit := func(l *EventLog) {
		for i := 0; i < 50; i++ {
			l.Event(time.Duration(i)*time.Millisecond, "x").U("i", uint64(i)).End()
		}
	}
	var a, b bytes.Buffer
	emit(NewEventLog(&a))
	lb := NewEventLog(&b)
	lb.SetMaxEvents(0) // explicit zero = unbounded
	emit(lb)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("unbounded default changed the stream")
	}
	if lb.Bounded() || lb.Dropped() != 0 {
		t.Fatalf("unbounded log reports bounded=%v dropped=%d", lb.Bounded(), lb.Dropped())
	}
}

func TestNewWithMaxEvents(t *testing.T) {
	var buf bytes.Buffer
	o := NewWith(nil, &buf, Options{MaxEvents: 1})
	o.Events().Event(0, "a").End()
	o.Events().Event(time.Second, "b").End()
	if o.Events().Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", o.Events().Dropped())
	}
}

func TestMetricsExposeEventDropStats(t *testing.T) {
	var buf bytes.Buffer
	o := NewWith(nil, &buf, Options{MaxEvents: 2})
	for i := 0; i < 5; i++ {
		o.Events().Event(time.Duration(i), "e").End()
	}
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "magus_obs_events_dropped 3") {
		t.Fatalf("missing dropped gauge in exposition:\n%s", body.String())
	}
	if !strings.Contains(body.String(), "magus_obs_events_emitted 2") {
		t.Fatalf("missing emitted gauge in exposition:\n%s", body.String())
	}
}

func TestMetricsUnboundedExpositionUnchanged(t *testing.T) {
	var buf bytes.Buffer
	o := New(nil, &buf)
	o.Events().Event(0, "e").End()
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if strings.Contains(body.String(), "magus_obs_events") {
		t.Fatalf("unbounded log leaked event-stat gauges:\n%s", body.String())
	}
}

func TestHistogramObserveN(t *testing.T) {
	reg := NewRegistry()
	a := reg.Histogram("obsn_a", "", []float64{1, 10})
	b := reg.Histogram("obsn_b", "", []float64{1, 10})
	for i := 0; i < 7; i++ {
		a.Observe(5)
	}
	a.Observe(0.5)
	b.ObserveN(5, 7)
	b.ObserveN(0.5, 1)
	b.ObserveN(2, 0) // no-op
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("ObserveN diverges: count %d/%d sum %v/%v", a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	var nilH *Histogram
	nilH.ObserveN(1, 5) // must not panic
}

func TestPagesServeAndLifecycle(t *testing.T) {
	o := New(nil, nil)
	srv := httptest.NewServer(NewHandler(o))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered /fleet status = %d, want 404", resp.StatusCode)
	}

	o.SetPage("fleet", func() (string, []byte, error) {
		return "application/json", []byte(`{"ok":true}`), nil
	})
	resp, err = http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body.String() != `{"ok":true}` {
		t.Fatalf("registered /fleet: %d %q", resp.StatusCode, body.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}

	o.SetPage("fleet", nil)
	resp, err = http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed /fleet status = %d, want 404", resp.StatusCode)
	}

	var nilObs *Observer
	nilObs.SetPage("fleet", func() (string, []byte, error) { return "", nil, nil })
	if nilObs.Page("fleet") != nil {
		t.Fatal("nil observer page not inert")
	}
}

package obs

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogJSONL(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.Event(200*time.Millisecond, "decision").
		F("mem_gbs", 85.25).S("trend", "up").B("acted", true).U("n", 42).End()
	l.Event(400*time.Millisecond, "health").S("from", "healthy").S("to", "degraded").End()

	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	// Every line is valid JSON.
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
	// Field order is emission order and formatting is canonical — the
	// byte-stability the golden tests depend on.
	want := `{"t":0.200,"type":"decision","mem_gbs":85.25,"trend":"up","acted":true,"n":42}`
	if lines[0] != want {
		t.Fatalf("line = %q, want %q", lines[0], want)
	}
}

func TestEventLogNonFiniteFloats(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.Event(0, "x").F("nan", math.NaN()).F("inf", math.Inf(1)).F("ninf", math.Inf(-1)).End()
	want := `{"t":0.000,"type":"x","nan":null,"inf":null,"ninf":null}` + "\n"
	if sb.String() != want {
		t.Fatalf("got %q, want %q", sb.String(), want)
	}
}

func TestEventLogStringEscaping(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	l.Event(0, "x").S("s", "a\"b\\c\nd\te\rf\x01g ☃").End()
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSuffix(sb.String(), "\n")), &m); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if m["s"] != "a\"b\\c\nd\te\rf\x01g ☃" {
		t.Fatalf("round-trip lost data: %q", m["s"])
	}
	if strings.Count(sb.String(), "\n") != 1 {
		t.Fatalf("embedded newline broke JSONL framing: %q", sb.String())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestEventLogStickyError(t *testing.T) {
	w := &failWriter{}
	l := NewEventLog(w)
	l.Event(0, "a").End()
	l.Event(0, "b").End()
	if l.Err() == nil {
		t.Fatal("error not surfaced")
	}
	// Emission after the first error keeps counting but stops writing.
	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if w.n != 1 {
		t.Fatalf("writes after error: %d", w.n)
	}
}

func TestEventLogByteStable(t *testing.T) {
	emit := func() string {
		var sb strings.Builder
		l := NewEventLog(&sb)
		for i := 0; i < 10; i++ {
			l.Event(time.Duration(i)*150*time.Millisecond, "decision").
				F("v", float64(i)*1.1).U("i", uint64(i)).End()
		}
		return sb.String()
	}
	if emit() != emit() {
		t.Fatal("identical emissions produced different bytes")
	}
}

// syncBuffer is a goroutine-safe strings.Builder.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestEventLogConcurrentEmission(t *testing.T) {
	buf := &syncBuffer{}
	l := NewEventLog(buf)
	var wg sync.WaitGroup
	const emitters, events = 8, 50
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				l.Event(time.Duration(i)*time.Millisecond, "e").U("i", uint64(i)).End()
			}
		}()
	}
	wg.Wait()
	if l.Count() != emitters*events {
		t.Fatalf("count = %d", l.Count())
	}
	// Each event must land as one contiguous, valid JSON line.
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != emitters*events {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line %q: %v", line, err)
		}
	}
}

package obs

import "runtime/debug"

// RegisterBuildInfo publishes the standard `magus_build_info` identity
// gauge on reg: constant value 1 with the module version, Go toolchain
// version and VCS revision as labels, so every scrape can tell exactly
// which build produced the metrics. Unknown fields (e.g. a non-module
// test binary, or no VCS stamp) degrade to "unknown" rather than
// omitting the family. Registration is idempotent — the registry
// returns the existing family on repeated calls.
func RegisterBuildInfo(reg *Registry) {
	version, revision := "unknown", "unknown"
	goVersion := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	reg.GaugeVec("magus_build_info",
		"Build identity of the running binary (constant 1).",
		"version", "goversion", "revision").
		With(version, goVersion, revision).Set(1)
}

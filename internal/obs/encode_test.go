package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	valid := []string{"a", "A", "_", ":", "magus_runs_total", "a:b_c9", "_9"}
	invalid := []string{"", "9a", "a-b", "a b", "a\n", "é", "a{"}
	for _, s := range valid {
		if !ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = false", s)
		}
	}
	for _, s := range invalid {
		if ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = true", s)
		}
	}
}

func TestValidLabelName(t *testing.T) {
	valid := []string{"a", "label", "_x", "x_9", "_"}
	invalid := []string{"", "9a", "a-b", "a:b", "__reserved", "é"}
	for _, s := range valid {
		if !ValidLabelName(s) {
			t.Errorf("ValidLabelName(%q) = false", s)
		}
	}
	for _, s := range invalid {
		if ValidLabelName(s) {
			t.Errorf("ValidLabelName(%q) = true", s)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"\\\"\n":       `\\\"\n`,
		"utf8 héllo ☃": "utf8 héllo ☃",
		"":             "",
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// unescapeLabelValue inverts the exposition escaping — the test-side
// reference used to prove escaping is lossless.
func unescapeLabelValue(s string) (string, error) {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			return "", fmt.Errorf("raw quote at %d", i)
		}
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		case 'n':
			out = append(out, '\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return string(out), nil
}

// checkExposition validates every line of a text exposition: comment
// lines follow the # HELP / # TYPE grammar, sample lines split into
// name[{labels}] value, label values carry no raw quotes or newlines,
// and values parse as floats. It returns the number of sample lines.
func checkExposition(t *testing.T, text string) int {
	t.Helper()
	if text == "" {
		return 0
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition does not end in newline: %q", text)
	}
	samples := 0
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("malformed comment line: %q", line)
		}
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
			rest = rest[i:]
		} else {
			t.Fatalf("no value separator in line: %q", line)
		}
		if !ValidMetricName(name) {
			t.Fatalf("invalid metric name %q in line %q", name, line)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("unterminated label set: %q", line)
			}
			if err := checkLabelSet(rest[1:end]); err != nil {
				t.Fatalf("bad label set in %q: %v", line, err)
			}
			rest = rest[end+1:]
		}
		if !strings.HasPrefix(rest, " ") {
			t.Fatalf("no space before value: %q", line)
		}
		val := rest[1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable value %q in line %q", val, line)
			}
		}
		samples++
	}
	return samples
}

// checkLabelSet validates the inside of a {...} label set.
func checkLabelSet(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("no = in %q", s)
		}
		if !ValidLabelName(s[:eq]) && s[:eq] != "le" {
			return fmt.Errorf("bad label name %q", s[:eq])
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted value")
		}
		s = s[1:]
		// Scan to the closing quote, honouring escapes.
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated value")
		}
		if _, err := unescapeLabelValue(s[:i]); err != nil {
			return err
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("missing comma")
			}
			s = s[1:]
		}
	}
	return nil
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", "Runs started.").Add(3)
	r.GaugeVec("power_watts", "Power by socket.", "socket").With("0").Set(142.5)
	r.GaugeVec("power_watts", "Power by socket.", "socket").With("1").Set(137)
	r.Histogram("period_seconds", "Decision period.", []float64{0.2, 0.5}).Observe(0.2)

	want := strings.Join([]string{
		`# HELP period_seconds Decision period.`,
		`# TYPE period_seconds histogram`,
		`period_seconds_bucket{le="0.2"} 1`,
		`period_seconds_bucket{le="0.5"} 1`,
		`period_seconds_bucket{le="+Inf"} 1`,
		`period_seconds_sum 0.2`,
		`period_seconds_count 1`,
		`# HELP power_watts Power by socket.`,
		`# TYPE power_watts gauge`,
		`power_watts{socket="0"} 142.5`,
		`power_watts{socket="1"} 137`,
		`# HELP runs_total Runs started.`,
		`# TYPE runs_total counter`,
		`runs_total 3`,
	}, "\n") + "\n"
	if got := r.Text(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	checkExposition(t, want)
}

func TestExpositionSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.Gauge("pos", "").Set(math.Inf(1))
	r.Gauge("neg", "").Set(math.Inf(-1))
	r.Gauge("nan", "").Set(math.NaN())
	text := r.Text()
	for _, line := range []string{"pos +Inf", "neg -Inf", "nan NaN"} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, text)
		}
	}
	checkExposition(t, text)
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("m", `help with \ and "quotes"`+"\nand newline", "l").
		With("va\"l\\ue\nx").Set(1)
	text := r.Text()
	wantHelp := `# HELP m help with \\ and "quotes"\nand newline` + "\n"
	if !strings.Contains(text, wantHelp) {
		t.Fatalf("help not escaped:\n%s", text)
	}
	wantSample := `m{l="va\"l\\ue\nx"} 1` + "\n"
	if !strings.Contains(text, wantSample) {
		t.Fatalf("label value not escaped:\n%s", text)
	}
	// The format must stay line-oriented even with hostile inputs.
	checkExposition(t, text)
}

func TestExpositionCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("m", "", "l")
	v.With("z").Set(1)
	v.With("a").Set(2)
	r.Counter("b_first", "").Inc()
	text := r.Text()
	if strings.Index(text, "# TYPE b_first") > strings.Index(text, "# TYPE m") {
		t.Fatalf("families not sorted:\n%s", text)
	}
	if strings.Index(text, `l="a"`) > strings.Index(text, `l="z"`) {
		t.Fatalf("children not sorted:\n%s", text)
	}
	// Byte-stable: two encodes of an unchanged registry are identical.
	if r.Text() != text {
		t.Fatal("encoding not stable")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "x").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != r.Text() {
		t.Fatal("WriteText differs from Text")
	}
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// ExpositionContentType is the Prometheus text-format content type
// served on /metrics.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewHandler returns the daemon's introspection surface over o:
//
//   - /metrics — the registry in Prometheus text exposition format;
//   - /healthz — 200 "ok" while the sensing path is healthy, 503 with
//     the state name ("degraded", "lost") once it is not;
//   - /debug/pprof/... — the standard Go profiling endpoints.
//
// Every endpoint reads only atomically published state, so serving
// concurrently with a running simulation is race-free.
//
// The handler also publishes the `magus_build_info` identity gauge on
// o's registry, so any scraped exposition names the binary behind it.
func NewHandler(o *Observer) http.Handler {
	RegisterBuildInfo(o.Registry())
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ExpositionContentType)
		w.WriteHeader(http.StatusOK)
		if r.Method == http.MethodHead {
			return
		}
		w.Write(o.Registry().AppendText(nil))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := o.Health()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Magus-Health", h.String())
		if h == Healthy {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(h.String() + "\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// ExpositionContentType is the Prometheus text-format content type
// served on /metrics.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewHandler returns the daemon's introspection surface over o:
//
//   - /metrics — the registry in Prometheus text exposition format;
//   - /healthz — 200 "ok" while the sensing path is healthy, 503 with
//     the state name ("degraded", "lost") once it is not;
//   - /fleet — the fleet distribution snapshot (JSON) when a fleet
//     run registered one via SetPage("fleet", …); 404 otherwise;
//   - /debug/flight — the flight-recorder dump when a run registered
//     one via SetPage("debug/flight", …); 404 otherwise;
//   - /debug/pprof/... — the standard Go profiling endpoints.
//
// Every endpoint reads only atomically published state, so serving
// concurrently with a running simulation is race-free.
//
// The handler also publishes the `magus_build_info` identity gauge on
// o's registry, so any scraped exposition names the binary behind it.
func NewHandler(o *Observer) http.Handler {
	RegisterBuildInfo(o.Registry())
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ExpositionContentType)
		w.WriteHeader(http.StatusOK)
		if r.Method == http.MethodHead {
			return
		}
		publishEventStats(o)
		w.Write(o.Registry().AppendText(nil))
	})
	servePage := func(name string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			fn := o.Page(name)
			if fn == nil {
				http.Error(w, name+" not enabled", http.StatusNotFound)
				return
			}
			ct, body, err := fn()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", ct)
			w.WriteHeader(http.StatusOK)
			if r.Method == http.MethodHead {
				return
			}
			w.Write(body)
		}
	}
	mux.HandleFunc("/fleet", servePage("fleet"))
	mux.HandleFunc("/debug/flight", servePage("debug/flight"))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := o.Health()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Magus-Health", h.String())
		if h == Healthy {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(h.String() + "\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// publishEventStats refreshes the event-log gauges before a scrape.
// It registers nothing unless the log carries a max-events bound, so
// unbounded runs keep their historical exposition byte-identical.
func publishEventStats(o *Observer) {
	l := o.Events()
	if l == nil || !l.Bounded() {
		return
	}
	reg := o.Registry()
	reg.Gauge("magus_obs_events_emitted",
		"Events written to the bounded JSONL event log.").Set(float64(l.Count()))
	reg.Gauge("magus_obs_events_dropped",
		"Events discarded after the event log's max-events bound was reached.").Set(float64(l.Dropped()))
}

package spans

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildSyntheticTrace records a small deterministic trace exercising
// every span kind, attribute and the ledger summary.
func buildSyntheticTrace() *Tracer {
	m := testModel()
	tr := New(2)
	tr.SetPowerModel(m)
	tr.BeginRun(Meta{System: "IntelA100", Workload: "srad", Governor: "magus", Seed: 7})
	tr.MSRWrite(0, 0, 2.2) // attach-time write
	dt := 100 * time.Millisecond
	now := time.Duration(0)
	phases := []string{"warmup", "stream", "stream"}
	rels := []float64{1, 0.9, 0.6}
	traffics := []float64{0, 180, 40}
	for i := 0; i < 3; i++ {
		tr.BeginTick(now)
		tr.SetPhase(phases[i])
		// Writes precede the decision emit, as in the runtime.
		tr.MSRWrite(now, 0, 2.2-0.1*float64(i+1))
		tr.MSRWrite(now, 1, 2.2-0.1*float64(i+1))
		tr.Decision(now, DecisionAttrs{
			ThroughputGBs: traffics[i],
			DerivGBs:      float64(i) * 1.5,
			RingFill:      i,
			Trend:         1 - i,
			HighFreq:      i == 1,
			Warmup:        i == 0,
			Acted:         i != 2,
			PrevGHz:       2.2 - 0.1*float64(i),
			TargetGHz:     2.2 - 0.1*float64(i+1),
			Reason:        []string{"warmup", "high-freq-pin", "trend-down"}[i],
			Health:        "healthy",
		})
		for s := 0; s < 3; s++ {
			tr.AccumulateSocketActual(dt, rels[i], traffics[i], testModel().Total(rels[i], traffics[i]))
			now += dt
		}
	}
	tr.Finish(now)
	return tr
}

// TestPerfettoGolden pins the exporter's bytes. Regenerate with
// `go test ./internal/spans -run TestPerfettoGolden -update`.
func TestPerfettoGolden(t *testing.T) {
	tr := buildSyntheticTrace()
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "synthetic_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto export differs from golden %s\ngot %d bytes, want %d\n(regenerate with -update if the change is intentional)",
			golden, buf.Len(), len(want))
	}

	// Round-trip: export again, byte-for-byte identical.
	var again bytes.Buffer
	if err := tr.WritePerfetto(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("second export differs from first — exporter is not deterministic")
	}
}

// TestPerfettoValidJSON checks the document parses and carries the
// shape spanlint (and ui.perfetto.dev) expect.
func TestPerfettoValidJSON(t *testing.T) {
	tr := buildSyntheticTrace()
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   *int64          `json:"ts"`
			Dur  *int64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			System   string `json:"system"`
			Workload string `json:"workload"`
			Governor string `json:"governor"`
			Seed     int64  `json:"seed"`
		} `json:"otherData"`
		MagusWaste struct {
			Run struct {
				BaselineJ float64 `json:"baseline_j"`
				UsefulJ   float64 `json:"useful_j"`
				WasteJ    float64 `json:"waste_j"`
				TotalJ    float64 `json:"total_j"`
			} `json:"run"`
			Windows []json.RawMessage `json:"windows"`
			Phases  []json.RawMessage `json:"phases"`
		} `json:"magusWaste"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	decisions, writes := 0, 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "decision":
			decisions++
			if e.TS == nil || e.Dur == nil {
				t.Error("decision event missing ts/dur")
			}
		case e.Ph == "X" && e.Name == "msr_write":
			writes++
		}
	}
	if decisions != 3 {
		t.Errorf("decision events = %d, want 3", decisions)
	}
	if writes != 7 {
		t.Errorf("msr_write events = %d, want 7", writes)
	}
	if doc.OtherData.Workload != "srad" || doc.OtherData.Seed != 7 {
		t.Errorf("otherData = %+v", doc.OtherData)
	}
	r := doc.MagusWaste.Run
	if r.TotalJ <= 0 {
		t.Fatalf("run total = %v", r.TotalJ)
	}
	if diff := r.BaselineJ + r.UsefulJ + r.WasteJ - r.TotalJ; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("waste summary does not balance: %v", diff)
	}
	if len(doc.MagusWaste.Windows) == 0 || len(doc.MagusWaste.Phases) != 2 {
		t.Errorf("windows=%d phases=%d", len(doc.MagusWaste.Windows), len(doc.MagusWaste.Phases))
	}
}

// TestPerfettoStringEscaping pins control/quote escaping in names.
func TestPerfettoStringEscaping(t *testing.T) {
	tr := New(0)
	tr.BeginRun(Meta{System: `sys"with\quote`, Workload: "tab\there"})
	tr.Finish(time.Second)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("escaped export is not valid JSON: %v\n%s", err, buf.String())
	}
	other := doc["otherData"].(map[string]any)
	if other["system"] != `sys"with\quote` || other["workload"] != "tab\there" {
		t.Errorf("escaping round-trip failed: %+v", other)
	}
}

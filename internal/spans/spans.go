// Package spans is the decision-causality layer of the MAGUS
// reproduction: a deterministic span tracer over the simulation's
// virtual clock (never wall-clock) plus an energy-attribution ledger
// that decomposes uncore energy into baseline / useful / waste joules.
//
// The span model mirrors how the runtime actually makes decisions:
//
//	run                 the whole harness run
//	└── window          one Algorithm-1/2 history window (Window ticks)
//	    └── tick        one governor invocation (sample-and-hold until
//	        │           the next invocation — the MDFS decision period)
//	        └── decision  the MDFS outcome, carrying the structured
//	            │         attributes that explain *why* it fired
//	            └── msr_write  each uncore-limit MSR write it caused
//
// Three properties the rest of the repo relies on:
//
//   - Virtual time only: every timestamp is the sim engine's clock, so
//     a seeded run produces byte-identical spans on any machine.
//   - Nil safety: every method on a nil *Tracer is a no-op, so
//     instrumentation sites run unguarded and a spans-disabled run
//     executes the exact same code path as the seed (zero allocations,
//     byte-identical outputs — pinned by the harness identity tests).
//   - Preallocated arenas: when enabled, the tracer reserves span
//     storage for the whole run horizon up front (mirroring
//     telemetry.Recorder.Reserve), so steady-state span pushes append
//     into existing capacity.
package spans

import (
	"fmt"
	"time"
)

// Kind discriminates span types in the causality tree.
type Kind uint8

// Span kinds, ordered root to leaf.
const (
	KindRun Kind = iota
	KindWindow
	KindTick
	KindDecision
	KindMSRWrite
	numKinds
)

// String implements fmt.Stringer (the Perfetto event name).
func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindWindow:
		return "window"
	case KindTick:
		return "tick"
	case KindDecision:
		return "decision"
	case KindMSRWrite:
		return "msr_write"
	}
	return "unknown"
}

// ID identifies a span inside its tracer; 0 is "no span" (the root's
// parent). Valid IDs are 1-based indices into the arena.
type ID int32

// DecisionAttrs is the structured "why" of one MDFS decision span.
// Field semantics follow core.Decision; Reason is the human-readable
// cause (trend edge, high-frequency pin, resilience hold/pin, warm-up).
type DecisionAttrs struct {
	// ThroughputGBs is the cycle's memory-throughput sample; DerivGBs
	// is the one-interval first derivative Algorithm 1 saw (GB/s per
	// monitoring interval); RingFill is how much history the trend
	// window held when the decision was made.
	ThroughputGBs float64
	DerivGBs      float64
	RingFill      int

	// Trend is the Algorithm 1 prediction (-1 down, 0 flat, +1 up);
	// HighFreq reports the Algorithm 2 high-frequency phase state.
	Trend    int
	HighFreq bool
	Warmup   bool
	Missed   bool
	Acted    bool

	// PrevGHz → TargetGHz is the chosen-versus-previous uncore limit.
	PrevGHz   float64
	TargetGHz float64

	// Reason names the decision cause ("trend-up", "high-freq-pin",
	// "hold-degraded", "pin-lost", ...); Health is the resilience
	// tracker's sensor state ("healthy", "degraded", "lost").
	Reason string
	Health string
}

// Span is one node of the causality tree. End < Start means the span
// is still open; Finish closes every open span at the run end.
type Span struct {
	ID     ID
	Parent ID
	Kind   Kind
	Start  time.Duration
	End    time.Duration

	// Decision attributes (KindDecision only).
	Decision DecisionAttrs

	// Socket and GHz describe an uncore-limit write (KindMSRWrite).
	Socket int
	GHz    float64

	// Index numbers windows and ticks within the run (0-based).
	Index int

	// Energy attribution accumulated while the span was the open
	// attribution unit of its kind (run, window and decision spans).
	Energy EnergyAttr
}

// Open reports whether the span has not been closed yet.
func (s *Span) Open() bool { return s.End < s.Start }

// Meta is the run identity stamped on the trace.
type Meta struct {
	System   string
	Workload string
	Governor string
	Seed     int64
}

// pendingWrite buffers an MSR write until its causal parent (the
// decision emitted later in the same invocation) exists.
type pendingWrite struct {
	at     time.Duration
	socket int
	ghz    float64
}

// Tracer records spans for one run. A nil tracer is disabled: every
// method no-ops, costs nothing and allocates nothing. Tracers are
// single-run, single-goroutine objects (the sim engine is serial);
// create one per run.
type Tracer struct {
	meta  Meta
	spans []Span

	// windowTicks is how many ticks one window groups (the runtime's
	// Algorithm 1/2 history length); 0 defaults to DefaultWindowTicks.
	windowTicks int

	run          ID
	window       ID
	tick         ID
	decision     ID
	lastTick     ID
	tickCount    int
	windowCount  int
	pending      []pendingWrite
	byKind       [numKinds]int
	finished     bool
	finishedAt   time.Duration
	ledger       Ledger
	model        PowerModel
	modelPresent bool
}

// DefaultWindowTicks groups ticks into windows when the caller does not
// override it — the paper's Window=10 history length.
const DefaultWindowTicks = 10

// New returns an enabled tracer. windowTicks sets how many governor
// ticks one window span groups (<= 0 selects DefaultWindowTicks).
func New(windowTicks int) *Tracer {
	if windowTicks <= 0 {
		windowTicks = DefaultWindowTicks
	}
	return &Tracer{
		windowTicks: windowTicks,
		pending:     make([]pendingWrite, 0, 8),
	}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Reserve preallocates the span arena for n spans, sized by the caller
// from the run horizon, so steady-state pushes never reallocate. The
// ledger's per-window list is reserved alongside.
func (t *Tracer) Reserve(n int) {
	if t == nil {
		return
	}
	if n > cap(t.spans) {
		grown := make([]Span, len(t.spans), n)
		copy(grown, t.spans)
		t.spans = grown
	}
	if wcap := n/t.windowTicks + 2; wcap > cap(t.ledger.windows) {
		grownW := make([]WindowEnergy, len(t.ledger.windows), wcap)
		copy(grownW, t.ledger.windows)
		t.ledger.windows = grownW
	}
}

// SetPowerModel installs the uncore power decomposition model the
// ledger integrates under. Must be called before the run starts.
func (t *Tracer) SetPowerModel(m PowerModel) {
	if t == nil {
		return
	}
	t.model = m
	t.modelPresent = true
	t.ledger.reset()
}

// SetTenantSplit installs a per-tenant attribution split for
// co-located runs: weights is a live, caller-owned slice (the workload
// multiplexer mutates it in place each step) and every subsequent
// accumulation is divided across the tenant buckets in proportion to
// the weights at that instant (even split while all weights are zero).
// Must be called after SetPowerModel (which resets the ledger) and
// before the run starts.
func (t *Tracer) SetTenantSplit(names []string, weights []float64) {
	if t == nil {
		return
	}
	if len(names) != len(weights) {
		panic(fmt.Sprintf("spans: tenant split names/weights mismatch (%d vs %d)", len(names), len(weights)))
	}
	t.ledger.setTenantSplit(names, weights)
}

// Meta returns the run identity (zero value for a nil tracer).
func (t *Tracer) Meta() Meta {
	if t == nil {
		return Meta{}
	}
	return t.meta
}

// push appends a span and returns its ID.
func (t *Tracer) push(kind Kind, parent ID, start time.Duration) ID {
	id := ID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind,
		Start: start, End: start - 1, // open
	})
	t.byKind[kind]++
	return id
}

// at returns the span for id (valid IDs only; callers own the IDs).
func (t *Tracer) at(id ID) *Span { return &t.spans[id-1] }

// close closes id at 'end' if it is open.
func (t *Tracer) close(id ID, end time.Duration) {
	if id == 0 {
		return
	}
	if s := t.at(id); s.Open() {
		s.End = end
	}
}

// BeginRun opens the root span at virtual time 0 and stamps the run
// identity. Calling it twice is a no-op.
func (t *Tracer) BeginRun(meta Meta) {
	if t == nil || t.run != 0 {
		return
	}
	t.meta = meta
	t.run = t.push(KindRun, 0, 0)
}

// BeginTick opens a tick span at now, closing the previous tick (and
// flushing any MSR writes it left pending onto it — a governor that
// emits no decisions still gets its writes attributed to the tick that
// performed them). Every windowTicks ticks a new window span opens.
func (t *Tracer) BeginTick(now time.Duration) {
	if t == nil {
		return
	}
	if t.run == 0 {
		t.BeginRun(Meta{})
	}
	t.flushPending(t.lastTickOrRun())
	t.close(t.tick, now)
	if t.tickCount%t.windowTicks == 0 {
		t.closeWindow(now)
		t.window = t.push(KindWindow, t.run, now)
		t.at(t.window).Index = t.windowCount
		t.windowCount++
		t.ledger.openWindow(t.window)
	}
	t.lastTick = t.tick
	t.tick = t.push(KindTick, t.window, now)
	t.at(t.tick).Index = t.tickCount
	t.tickCount++
	t.lastTick = t.tick
}

// lastTickOrRun is where stale pending writes (performed outside any
// decision) are parented: the tick that performed them, or the run for
// writes that predate the first tick (governor Attach).
func (t *Tracer) lastTickOrRun() ID {
	if t.lastTick != 0 {
		return t.lastTick
	}
	return t.run
}

// closeWindow closes the open window span, folding the ledger's
// per-window accumulation into its energy attribution.
func (t *Tracer) closeWindow(now time.Duration) {
	if t.window == 0 {
		return
	}
	t.at(t.window).Energy = t.ledger.closeWindow()
	t.close(t.window, now)
	t.window = 0
}

// MSRWrite records one uncore-limit MSR write. The write is buffered
// and parented to the decision span emitted later in the same
// invocation; writes no decision claims fall to the tick (or the run,
// for Attach-time writes before the first tick).
func (t *Tracer) MSRWrite(now time.Duration, socket int, ghz float64) {
	if t == nil {
		return
	}
	t.pending = append(t.pending, pendingWrite{at: now, socket: socket, ghz: ghz})
}

// flushPending materialises buffered MSR writes as children of parent.
func (t *Tracer) flushPending(parent ID) {
	if len(t.pending) == 0 {
		return
	}
	if parent == 0 {
		if t.run == 0 {
			t.BeginRun(Meta{})
		}
		parent = t.run
	}
	for _, w := range t.pending {
		id := t.push(KindMSRWrite, parent, w.at)
		s := t.at(id)
		s.End = w.at // instantaneous
		s.Socket = w.socket
		s.GHz = w.ghz
	}
	t.pending = t.pending[:0]
}

// Decision opens a decision span under the current tick, closes the
// previous decision (sample-and-hold: a decision stays in force — and
// keeps accumulating attributed energy — until the next one), and
// adopts the invocation's buffered MSR writes as children.
func (t *Tracer) Decision(now time.Duration, attrs DecisionAttrs) {
	if t == nil {
		return
	}
	if t.run == 0 {
		t.BeginRun(Meta{})
	}
	prev := t.decision
	if prev != 0 {
		t.at(prev).Energy = t.ledger.closeDecision()
		t.close(prev, now)
	}
	parent := t.tick
	if parent == 0 {
		parent = t.run
	}
	t.decision = t.push(KindDecision, parent, now)
	t.at(t.decision).Decision = attrs
	t.ledger.openDecision(t.decision)
	t.flushPending(t.decision)
}

// Accumulate integrates one engine step of uncore power into the
// ledger: actual versus needed-for-traffic decomposition summed over
// sockets, attributed to the open run, window, decision and workload
// phase. rel is the socket's uncore frequency relative to max, traffic
// its served GB/s. Call once per socket per step via AccumulateSocket,
// or use AccumulateSocket directly.
func (t *Tracer) AccumulateSocket(dt time.Duration, rel, traffic float64) {
	if t == nil || !t.modelPresent {
		return
	}
	b, u, w := t.model.Decompose(rel, traffic)
	total := t.model.Total(rel, traffic)
	t.ledger.accumulate(dt.Seconds(), b, u, w, total)
}

// AccumulateSocketActual is AccumulateSocket with the node's own
// computed uncore watts as the total (bit-identical to the power model
// the node integrated), so the ledger's total is exactly the simulated
// uncore energy rather than a re-evaluation of the same formula.
func (t *Tracer) AccumulateSocketActual(dt time.Duration, rel, traffic, actualW float64) {
	if t == nil || !t.modelPresent {
		return
	}
	b, u, w := t.model.Decompose(rel, traffic)
	t.ledger.accumulate(dt.Seconds(), b, u, w, actualW)
}

// SetPhase switches the workload-phase attribution bucket (sample-and-
// hold: energy accumulates into the current phase until the next call).
func (t *Tracer) SetPhase(name string) {
	if t == nil {
		return
	}
	t.ledger.setPhase(name)
}

// Finish closes every open span at end. Further recording is ignored.
func (t *Tracer) Finish(end time.Duration) {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	t.finishedAt = end
	t.flushPending(t.lastTickOrRun())
	if t.decision != 0 {
		t.at(t.decision).Energy = t.ledger.closeDecision()
		t.close(t.decision, end)
		t.decision = 0
	}
	t.close(t.tick, end)
	t.tick = 0
	t.closeWindow(end)
	if t.run != 0 {
		t.at(t.run).Energy = t.ledger.run
		t.close(t.run, end)
	}
}

// Spans returns the recorded spans in creation order. The slice is the
// tracer's arena; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Count returns how many spans of kind were recorded.
func (t *Tracer) Count(kind Kind) int {
	if t == nil || kind >= numKinds {
		return 0
	}
	return t.byKind[kind]
}

// Ledger returns the energy-attribution ledger (zero value when nil or
// no power model was installed).
func (t *Tracer) Ledger() *Ledger {
	if t == nil {
		return nil
	}
	return &t.ledger
}

package spans

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testModel() PowerModel {
	// IntelA100 preset's uncore parameters.
	return PowerModel{
		BaseWatts: 6, DynMaxWatts: 47, TrafficWattsPerGBs: 0.03,
		PeakGBs: 200, FloorFrac: 0.15, RelMin: 0.8 / 2.2,
	}
}

// TestDecomposeProperties pins the analytic behaviour of the split.
func TestDecomposeProperties(t *testing.T) {
	m := testModel()

	// At full speed with zero traffic, everything above RelMin² dynamic
	// is waste.
	b, u, w := m.Decompose(1, 0)
	if b != m.BaseWatts {
		t.Errorf("baseline = %v, want %v", b, m.BaseWatts)
	}
	wantU := m.DynMaxWatts * m.RelMin * m.RelMin
	if math.Abs(u-wantU) > 1e-12 {
		t.Errorf("useful at idle = %v, want %v", u, wantU)
	}
	if w <= 0 {
		t.Errorf("waste at full-speed idle = %v, want > 0", w)
	}

	// Running at exactly the needed frequency wastes nothing.
	traffic := 120.0
	need := m.relNeed(traffic)
	_, _, w = m.Decompose(need, traffic)
	if w != 0 {
		t.Errorf("waste at matched frequency = %v, want 0", w)
	}

	// Running below need wastes nothing either (clamped).
	_, _, w = m.Decompose(need*0.7, traffic)
	if w != 0 {
		t.Errorf("waste below need = %v, want 0", w)
	}

	// Saturated traffic needs rel = 1: no waste possible.
	_, _, w = m.Decompose(1, m.PeakGBs*2)
	if w != 0 {
		t.Errorf("waste at saturation = %v, want 0", w)
	}

	// Total matches power.UncoreParams.Power's formula.
	if got, want := m.Total(0.9, 50), m.BaseWatts+m.DynMaxWatts*0.81+m.TrafficWattsPerGBs*50; math.Abs(got-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

// TestDecomposeBalanceRandomized is the ISSUE's randomized invariant:
// baseline + useful + waste == total within 1 ulp, per sample.
func TestDecomposeBalanceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	models := []PowerModel{
		testModel(),
		{BaseWatts: 10, DynMaxWatts: 62, TrafficWattsPerGBs: 0.015, PeakGBs: 600, FloorFrac: 0.2, RelMin: 0.32},
		{BaseWatts: 0, DynMaxWatts: 1, TrafficWattsPerGBs: 0, PeakGBs: 1, FloorFrac: 0, RelMin: 0},
	}
	for i := 0; i < 20000; i++ {
		m := models[i%len(models)]
		rel := rng.Float64() * 1.2     // includes out-of-range clamps
		traffic := rng.Float64() * 700 // includes beyond-peak
		if i%7 == 0 {
			rel = -rel
		}
		if i%11 == 0 {
			traffic = -traffic
		}
		b, u, w := m.Decompose(rel, traffic)
		total := m.Total(rel, traffic)
		// Sum and Total are computed with independent rounding orders;
		// DefaultBalanceUlps is the documented per-sample allowance.
		if diff := math.Abs(b + u + w - total); diff > DefaultBalanceUlps*ulp(total) {
			t.Fatalf("i=%d model=%+v rel=%v traffic=%v: |%v+%v+%v - %v| = %v > %v ulps (%v)",
				i, m, rel, traffic, b, u, w, total, diff, DefaultBalanceUlps, ulp(total))
		}
		if w < 0 || u < 0 || b < 0 {
			t.Fatalf("negative component: b=%v u=%v w=%v", b, u, w)
		}
	}
}

// TestLedgerWindowBalanceRandomized integrates random workloads
// through the full tracer path and checks every window (and the run
// total) balances within the sample-scaled ulp tolerance.
func TestLedgerWindowBalanceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := testModel()
		tr := New(10)
		tr.SetPowerModel(m)
		tr.BeginRun(Meta{Seed: seed})
		dt := time.Millisecond
		samplesPerWindow := 0
		now := time.Duration(0)
		for tick := 0; tick < 87; tick++ { // not a multiple of 10: last window stays open until Finish
			tr.BeginTick(now)
			tr.Decision(now, DecisionAttrs{TargetGHz: 1 + rng.Float64()})
			for s := 0; s < 300; s++ { // 300 × 1ms steps per 0.3s tick, 2 sockets
				for sock := 0; sock < 2; sock++ {
					rel := 0.3 + 0.7*rng.Float64()
					traffic := rng.Float64() * 250
					tr.AccumulateSocketActual(dt, rel, traffic, m.Total(rel, traffic))
				}
				now += dt
			}
			samplesPerWindow = 300 * 2 * 10
		}
		tr.Finish(now)

		l := tr.Ledger()
		if len(l.Windows()) == 0 {
			t.Fatal("no windows closed")
		}
		tol := BalanceTolUlps(samplesPerWindow)
		for _, w := range l.Windows() {
			if w.Energy.Imbalance() > tol*ulp(w.Energy.TotalJ) {
				t.Errorf("seed %d window %d: imbalance %v exceeds %v ulps of %v J",
					seed, w.Index, w.Energy.Imbalance(), tol, w.Energy.TotalJ)
			}
			if w.Energy.TotalJ <= 0 {
				t.Errorf("seed %d window %d: non-positive total %v", seed, w.Index, w.Energy.TotalJ)
			}
		}
		runTol := BalanceTolUlps(87 * 300 * 2)
		if l.Run().Imbalance() > runTol*ulp(l.Run().TotalJ) {
			t.Errorf("seed %d run imbalance %v exceeds tolerance", seed, l.Run().Imbalance())
		}
		if !l.Balanced(runTol) {
			t.Errorf("seed %d: Balanced(%v) = false", seed, runTol)
		}

		// Windows + open-tail == run (each sample lands in exactly one window bucket).
		var winSum float64
		for _, w := range l.Windows() {
			winSum += w.Energy.TotalJ
		}
		if winSum > l.Run().TotalJ*(1+1e-12) {
			t.Errorf("seed %d: window sum %v exceeds run total %v", seed, winSum, l.Run().TotalJ)
		}
	}
}

// TestLedgerPhaseAttribution checks phase bucketing under
// sample-and-hold and the deterministic sorted accessor.
func TestLedgerPhaseAttribution(t *testing.T) {
	m := testModel()
	tr := New(10)
	tr.SetPowerModel(m)
	tr.BeginRun(Meta{})
	dt := 10 * time.Millisecond

	tr.SetPhase("warmup")
	tr.AccumulateSocketActual(dt, 1, 0, m.Total(1, 0))
	tr.SetPhase("stream")
	tr.AccumulateSocketActual(dt, 1, 100, m.Total(1, 100))
	tr.AccumulateSocketActual(dt, 1, 100, m.Total(1, 100))
	tr.SetPhase("warmup") // returns to an existing bucket
	tr.AccumulateSocketActual(dt, 0.5, 0, m.Total(0.5, 0))
	tr.Finish(40 * time.Millisecond)

	phases := tr.Ledger().Phases()
	if len(phases) != 2 || phases[0].Name != "warmup" || phases[1].Name != "stream" {
		t.Fatalf("phases (first-seen order) = %+v", phases)
	}
	if got, want := phases[0].Energy.Seconds, 0.02; math.Abs(got-want) > 1e-12 {
		t.Errorf("warmup seconds = %v, want %v", got, want)
	}
	if got, want := phases[1].Energy.Seconds, 0.02; math.Abs(got-want) > 1e-12 {
		t.Errorf("stream seconds = %v, want %v", got, want)
	}
	var phaseSum float64
	for _, p := range phases {
		phaseSum += p.Energy.TotalJ
	}
	if math.Abs(phaseSum-tr.Ledger().Run().TotalJ) > 1e-9 {
		t.Errorf("phase totals %v != run total %v", phaseSum, tr.Ledger().Run().TotalJ)
	}

	sorted := tr.Ledger().PhasesSorted()
	if sorted[0].Name != "stream" || sorted[1].Name != "warmup" {
		t.Errorf("PhasesSorted order = %q,%q", sorted[0].Name, sorted[1].Name)
	}
}

// TestEnergyAttrHelpers covers the small accessors.
func TestEnergyAttrHelpers(t *testing.T) {
	e := EnergyAttr{BaselineJ: 1, UsefulJ: 2, WasteJ: 3, TotalJ: 6}
	if e.SumJ() != 6 {
		t.Errorf("SumJ = %v", e.SumJ())
	}
	if e.Imbalance() != 0 {
		t.Errorf("Imbalance = %v", e.Imbalance())
	}
	if e.WasteFrac() != 0.5 {
		t.Errorf("WasteFrac = %v", e.WasteFrac())
	}
	if (EnergyAttr{}).WasteFrac() != 0 {
		t.Error("zero WasteFrac should be 0")
	}
	var nilL *Ledger
	if nilL.Run() != (EnergyAttr{}) || nilL.Windows() != nil || nilL.Phases() != nil || !nilL.Balanced(1) {
		t.Error("nil ledger accessors not zero-safe")
	}
}

// TestLedgerTenantSplit checks the co-located tenant bucketing: energy
// splits by the live weight slice (re-read every accumulation), falls
// back to an even split when all weights are zero, and the per-tenant
// buckets sum to the run totals.
func TestLedgerTenantSplit(t *testing.T) {
	m := testModel()
	tr := New(10)
	tr.SetPowerModel(m)
	tr.SetTenantSplit([]string{"a", "b"}, []float64{3, 1})
	weights := tr.Ledger().tenantW
	tr.BeginRun(Meta{})
	dt := 10 * time.Millisecond

	tr.AccumulateSocketActual(dt, 1, 100, m.Total(1, 100))
	// Mutate the live slice in place, as the workload mux does.
	weights[0], weights[1] = 1, 1
	tr.AccumulateSocketActual(dt, 1, 100, m.Total(1, 100))
	weights[0], weights[1] = 0, 0 // both idle: even split
	tr.AccumulateSocketActual(dt, 0.5, 0, m.Total(0.5, 0))
	tr.Finish(30 * time.Millisecond)

	tenants := tr.Ledger().Tenants()
	if len(tenants) != 2 || tenants[0].Name != "a" || tenants[1].Name != "b" {
		t.Fatalf("tenants = %+v", tenants)
	}
	run := tr.Ledger().Run()
	var sumTotal, sumSeconds float64
	for _, te := range tenants {
		sumTotal += te.Energy.TotalJ
		sumSeconds += te.Energy.Seconds
	}
	if math.Abs(sumTotal-run.TotalJ) > 1e-9 {
		t.Errorf("tenant totals %v != run total %v", sumTotal, run.TotalJ)
	}
	if math.Abs(sumSeconds-run.Seconds) > 1e-12 {
		t.Errorf("tenant seconds %v != run seconds %v", sumSeconds, run.Seconds)
	}
	// First step 3:1, second 1:1, third even: a = 0.75·s1 + 0.5·(s2+s3).
	s1 := m.Total(1, 100) * dt.Seconds()
	s23 := m.Total(1, 100)*dt.Seconds() + m.Total(0.5, 0)*dt.Seconds()
	wantA := 0.75*s1 + 0.5*s23
	if got := tenants[0].Energy.TotalJ; math.Abs(got-wantA) > 1e-9 {
		t.Errorf("tenant a total %v, want %v", got, wantA)
	}
}

// TestLedgerTenantSplitAccessors: nil ledger and split-less ledgers
// return no tenants; mismatched names/weights panic at install.
func TestLedgerTenantSplitMisuse(t *testing.T) {
	var nilLedger *Ledger
	if nilLedger.Tenants() != nil {
		t.Fatal("nil ledger has tenants")
	}
	tr := New(10)
	if tr.Ledger().Tenants() != nil {
		t.Fatal("split-less ledger has tenants")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tenant split did not panic")
		}
	}()
	tr.SetTenantSplit([]string{"a", "b"}, []float64{1})
}

// Energy-attribution ledger: integrates uncore power under
// sample-and-hold and decomposes every joule into baseline (the
// frequency-independent floor the hardware always pays), useful (the
// dynamic power a traffic-matched uncore frequency would have drawn)
// and waste (the dynamic power spent running the uncore faster than
// the observed traffic needed — the quantity the paper's MDFS loop
// exists to reclaim).
package spans

import (
	"math"
	"sort"
	"time"
)

// PowerModel is the uncore decomposition the ledger integrates under.
// It mirrors power.UncoreParams plus the bandwidth model that maps
// traffic back to the minimum relative uncore frequency able to serve
// it (node.Config.BWAt inverted).
type PowerModel struct {
	// BaseWatts, DynMaxWatts, TrafficWattsPerGBs are the socket uncore
	// power parameters (power.UncoreParams).
	BaseWatts          float64
	DynMaxWatts        float64
	TrafficWattsPerGBs float64

	// PeakGBs is the socket's peak bandwidth at maximum uncore
	// frequency; FloorFrac the fraction still available at rel → 0.
	// Together they invert BWAt: the relative frequency needed to
	// serve traffic T is (T/Peak − floor) / (1 − floor).
	PeakGBs   float64
	FloorFrac float64

	// RelMin is the lowest reachable relative frequency
	// (UncoreMinGHz / UncoreMaxGHz): below it the hardware cannot go,
	// so dynamic power down to RelMin² is not attributable waste.
	RelMin float64
}

// relNeed returns the minimum feasible relative uncore frequency that
// serves trafficGBs, clamped to [RelMin, 1].
func (m PowerModel) relNeed(trafficGBs float64) float64 {
	if trafficGBs < 0 {
		trafficGBs = 0
	}
	need := 0.0
	if m.PeakGBs > 0 && m.FloorFrac < 1 {
		need = (trafficGBs/m.PeakGBs - m.FloorFrac) / (1 - m.FloorFrac)
	}
	if need < m.RelMin {
		need = m.RelMin
	}
	if need > 1 {
		need = 1
	}
	return need
}

// Decompose splits the socket's uncore draw at relFreq with trafficGBs
// into baseline, useful and waste watts. The identity
//
//	baseline + useful + waste == Total(relFreq, trafficGBs)
//
// holds exactly up to one floating-point rounding per term (the ledger
// invariant test pins it to ulp scale).
func (m PowerModel) Decompose(relFreq, trafficGBs float64) (baselineW, usefulW, wasteW float64) {
	if relFreq < 0 {
		relFreq = 0
	} else if relFreq > 1 {
		relFreq = 1
	}
	if trafficGBs < 0 {
		trafficGBs = 0
	}
	relUse := m.relNeed(trafficGBs)
	if relUse > relFreq {
		// The uncore is running *below* what the traffic nominally
		// needs (queuing absorbs it); nothing is wasted.
		relUse = relFreq
	}
	baselineW = m.BaseWatts
	usefulW = m.DynMaxWatts*relUse*relUse + m.TrafficWattsPerGBs*trafficGBs
	wasteW = m.DynMaxWatts * (relFreq*relFreq - relUse*relUse)
	if wasteW < 0 {
		wasteW = 0
	}
	return baselineW, usefulW, wasteW
}

// Total returns the modelled uncore watts (identical formula to
// power.UncoreParams.Power).
func (m PowerModel) Total(relFreq, trafficGBs float64) float64 {
	if relFreq < 0 {
		relFreq = 0
	} else if relFreq > 1 {
		relFreq = 1
	}
	if trafficGBs < 0 {
		trafficGBs = 0
	}
	return m.BaseWatts + m.DynMaxWatts*relFreq*relFreq + m.TrafficWattsPerGBs*trafficGBs
}

// EnergyAttr is one attribution bucket's integrated joules.
type EnergyAttr struct {
	BaselineJ float64
	UsefulJ   float64
	WasteJ    float64
	// TotalJ integrates the simulation's actual uncore watts (not the
	// sum of the three parts), so Balance() is a real invariant check
	// rather than a tautology.
	TotalJ float64
	// Seconds is the attributed wall (virtual) time × sockets.
	Seconds float64
}

// Accumulate integrates one step of dt seconds: the decomposed watts
// go to their buckets and totalW — the simulation's independently
// computed actual — to TotalJ, keeping Imbalance a real check. It is
// the exported face of add for integrators outside the tracer (the
// cluster engine's fleet waste ledger).
func (e *EnergyAttr) Accumulate(dt, baseW, usefulW, wasteW, totalW float64) {
	e.add(dt, baseW, usefulW, wasteW, totalW)
}

// Merge folds another bucket into e (canonical-order fleet reduction).
func (e *EnergyAttr) Merge(o EnergyAttr) { e.merge(o) }

// Balanced reports whether the decomposition matches the
// independently integrated total within tolUlps ulps of TotalJ.
func (e EnergyAttr) Balanced(tolUlps float64) bool {
	return e.Imbalance() <= tolUlps*ulp(e.TotalJ)
}

// add accumulates one integration step.
func (e *EnergyAttr) add(dt, baseW, usefulW, wasteW, totalW float64) {
	e.BaselineJ += baseW * dt
	e.UsefulJ += usefulW * dt
	e.WasteJ += wasteW * dt
	e.TotalJ += totalW * dt
	e.Seconds += dt
}

// merge folds another bucket into e.
func (e *EnergyAttr) merge(o EnergyAttr) {
	e.BaselineJ += o.BaselineJ
	e.UsefulJ += o.UsefulJ
	e.WasteJ += o.WasteJ
	e.TotalJ += o.TotalJ
	e.Seconds += o.Seconds
}

// SumJ returns baseline + useful + waste.
func (e EnergyAttr) SumJ() float64 { return e.BaselineJ + e.UsefulJ + e.WasteJ }

// Imbalance returns |sum − total| — how far the decomposition drifts
// from the independently integrated total.
func (e EnergyAttr) Imbalance() float64 { return math.Abs(e.SumJ() - e.TotalJ) }

// WasteFrac returns waste as a fraction of total uncore energy
// (0 when no energy was attributed).
func (e EnergyAttr) WasteFrac() float64 {
	if e.TotalJ <= 0 {
		return 0
	}
	return e.WasteJ / e.TotalJ
}

// WindowEnergy is one closed window's attribution.
type WindowEnergy struct {
	Window ID
	Index  int
	Energy EnergyAttr
}

// PhaseEnergy is one workload phase's attribution.
type PhaseEnergy struct {
	Name   string
	Energy EnergyAttr
}

// TenantEnergy is one tenant's share of the uncore attribution in a
// co-located run.
type TenantEnergy struct {
	Name   string
	Energy EnergyAttr
}

// Ledger accumulates the decomposition at every open attribution
// level. It is owned by a Tracer and advanced from its hooks; the
// zero value is ready to use.
type Ledger struct {
	run      EnergyAttr
	window   EnergyAttr
	windowID ID
	windowIx int
	decision EnergyAttr
	decID    ID

	windows []WindowEnergy

	phase      string
	phaseAttr  map[string]*EnergyAttr
	phaseOrder []string

	// Tenant split (co-located runs): tenantW is a live, caller-owned
	// weight slice the workload multiplexer mutates in place each step;
	// every accumulation also lands in the per-tenant buckets,
	// proportional to the current weights.
	tenantNames []string
	tenantW     []float64
	tenantAttr  []EnergyAttr
}

func (l *Ledger) reset() {
	windows := l.windows[:0] // keep a Reserve()d arena across reset
	*l = Ledger{}
	l.windows = windows
}

// setTenantSplit installs the tenant names and live weight slice.
func (l *Ledger) setTenantSplit(names []string, weights []float64) {
	l.tenantNames = names
	l.tenantW = weights
	l.tenantAttr = make([]EnergyAttr, len(names))
}

func (l *Ledger) openWindow(id ID) {
	l.window = EnergyAttr{}
	l.windowID = id
}

func (l *Ledger) closeWindow() EnergyAttr {
	e := l.window
	if l.windowID != 0 {
		l.windows = append(l.windows, WindowEnergy{Window: l.windowID, Index: l.windowIx, Energy: e})
		l.windowIx++
	}
	l.window = EnergyAttr{}
	l.windowID = 0
	return e
}

func (l *Ledger) openDecision(id ID) {
	l.decision = EnergyAttr{}
	l.decID = id
}

func (l *Ledger) closeDecision() EnergyAttr {
	e := l.decision
	l.decision = EnergyAttr{}
	l.decID = 0
	return e
}

func (l *Ledger) setPhase(name string) {
	l.phase = name
}

func (l *Ledger) accumulate(dt, baseW, usefulW, wasteW, totalW float64) {
	l.run.add(dt, baseW, usefulW, wasteW, totalW)
	if l.windowID != 0 {
		l.window.add(dt, baseW, usefulW, wasteW, totalW)
	}
	if l.decID != 0 {
		l.decision.add(dt, baseW, usefulW, wasteW, totalW)
	}
	if l.phase != "" {
		if l.phaseAttr == nil {
			l.phaseAttr = make(map[string]*EnergyAttr, 8)
		}
		a := l.phaseAttr[l.phase]
		if a == nil {
			a = &EnergyAttr{}
			l.phaseAttr[l.phase] = a
			l.phaseOrder = append(l.phaseOrder, l.phase)
		}
		a.add(dt, baseW, usefulW, wasteW, totalW)
	}
	if len(l.tenantW) > 0 {
		var sum float64
		for _, w := range l.tenantW {
			sum += w
		}
		even := 1 / float64(len(l.tenantW))
		for i, w := range l.tenantW {
			frac := even
			if sum > 0 {
				frac = w / sum
			}
			l.tenantAttr[i].add(dt*frac, baseW, usefulW, wasteW, totalW)
		}
	}
}

// Run returns the whole-run attribution.
func (l *Ledger) Run() EnergyAttr {
	if l == nil {
		return EnergyAttr{}
	}
	return l.run
}

// Windows returns every closed window's attribution in order.
func (l *Ledger) Windows() []WindowEnergy {
	if l == nil {
		return nil
	}
	return l.windows
}

// Phases returns per-workload-phase attribution in first-seen order.
func (l *Ledger) Phases() []PhaseEnergy {
	if l == nil {
		return nil
	}
	out := make([]PhaseEnergy, 0, len(l.phaseOrder))
	for _, name := range l.phaseOrder {
		out = append(out, PhaseEnergy{Name: name, Energy: *l.phaseAttr[name]})
	}
	return out
}

// Tenants returns per-tenant uncore attribution in split order (empty
// unless the run was co-located and a tenant split was installed).
func (l *Ledger) Tenants() []TenantEnergy {
	if l == nil || len(l.tenantNames) == 0 {
		return nil
	}
	out := make([]TenantEnergy, 0, len(l.tenantNames))
	for i, name := range l.tenantNames {
		out = append(out, TenantEnergy{Name: name, Energy: l.tenantAttr[i]})
	}
	return out
}

// PhasesSorted returns per-phase attribution sorted by name (for
// deterministic tabular output regardless of schedule order).
func (l *Ledger) PhasesSorted() []PhaseEnergy {
	out := l.Phases()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Balanced reports whether every closed window (and the run total)
// satisfies baseline + useful + waste == total within tol ulps of the
// window's total — the ledger invariant.
func (l *Ledger) Balanced(tolUlps float64) bool {
	if l == nil {
		return true
	}
	check := func(e EnergyAttr) bool {
		return e.Imbalance() <= tolUlps*ulp(e.TotalJ)
	}
	if !check(l.run) {
		return false
	}
	for _, w := range l.windows {
		if !check(w.Energy) {
			return false
		}
	}
	return true
}

// ulp returns the unit-in-the-last-place spacing at |x| (minimum one
// smallest subnormal so a zero total still admits exact balance).
func ulp(x float64) float64 {
	x = math.Abs(x)
	u := math.Nextafter(x, math.Inf(1)) - x
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return u
}

// DefaultBalanceUlps is the per-sample rounding allowance used by the
// invariant tests and spanlint: each integration step contributes at
// most ~4 roundings, so N samples admit ~4N ulps of drift. Callers
// scale by their sample count; this is the per-sample factor.
const DefaultBalanceUlps = 4.0

// BalanceTolUlps returns the ulp tolerance for a bucket integrated
// from n samples.
func BalanceTolUlps(n int) float64 {
	if n < 1 {
		n = 1
	}
	return DefaultBalanceUlps * float64(n)
}

// StepsIn returns how many integration steps of dt fit in d (helper
// for sizing balance tolerances from a run horizon).
func StepsIn(d, dt time.Duration) int {
	if dt <= 0 {
		return 0
	}
	return int(d / dt)
}

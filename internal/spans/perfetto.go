// Perfetto / Chrome trace-event export. The writer emits the JSON
// object form of the trace-event format — "X" complete events with
// microsecond timestamps plus "M" metadata naming the process and the
// per-kind tracks — byte-deterministically: field order is fixed,
// floats use the shortest round-trip encoding, and all timestamps are
// virtual. The same seeded run always exports the same bytes, which is
// what the committed golden pins.
//
// Extra top-level keys are legal in the format; the exporter adds a
// "magusWaste" summary (run / per-window / per-phase ledger totals) so
// one file carries both the causality tree and the attribution table —
// cmd/spanlint validates the balance invariant straight off this key.
package spans

import (
	"io"
	"strconv"
	"time"
)

// trackID assigns each span kind its own "thread" so Perfetto renders
// the causality levels as stacked tracks.
func trackID(k Kind) int { return int(k) + 1 }

// perfettoWriter builds the JSON into one reusable buffer.
type perfettoWriter struct {
	buf []byte
}

func (w *perfettoWriter) str(s string) {
	w.buf = append(w.buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			w.buf = append(w.buf, '\\', c)
		case c < 0x20:
			w.buf = append(w.buf, '\\', 'u', '0', '0',
				"0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		default:
			w.buf = append(w.buf, c)
		}
	}
	w.buf = append(w.buf, '"')
}

func (w *perfettoWriter) raw(s string)      { w.buf = append(w.buf, s...) }
func (w *perfettoWriter) int(v int64)       { w.buf = strconv.AppendInt(w.buf, v, 10) }
func (w *perfettoWriter) float(v float64)   { w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64) }
func (w *perfettoWriter) key(name string)   { w.str(name); w.buf = append(w.buf, ':') }
func (w *perfettoWriter) field(name string) { w.raw(","); w.key(name) }

// usec converts a virtual timestamp to trace microseconds.
func usec(d time.Duration) int64 { return int64(d / time.Microsecond) }

// WritePerfetto serialises the trace. Safe on a nil tracer (writes an
// empty trace document).
func (t *Tracer) WritePerfetto(out io.Writer) error {
	w := &perfettoWriter{buf: make([]byte, 0, 1<<16)}
	w.raw("{")
	w.key("traceEvents")
	w.raw("[\n")

	meta := t.Meta()
	first := true
	emit := func(f func()) {
		if !first {
			w.raw(",\n")
		}
		first = false
		f()
	}

	// Process / track names so the UI labels the causality levels.
	emit(func() {
		w.raw(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":`)
		name := "magus"
		if meta.Workload != "" {
			name = "magus " + meta.Workload
		}
		w.str(name)
		w.raw("}}")
	})
	for k := KindRun; k < numKinds; k++ {
		k := k
		emit(func() {
			w.raw(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
			w.int(int64(trackID(k)))
			w.raw(`,"args":{"name":`)
			w.str(k.String())
			w.raw("}}")
		})
	}
	for i := range t.Spans() {
		s := &t.Spans()[i]
		emit(func() { writeSpanEvent(w, s) })
	}
	w.raw("\n]")

	w.field("displayTimeUnit")
	w.str("ms")

	w.field("otherData")
	w.raw("{")
	w.key("system")
	w.str(meta.System)
	w.field("workload")
	w.str(meta.Workload)
	w.field("governor")
	w.str(meta.Governor)
	w.field("seed")
	w.int(meta.Seed)
	w.raw("}")

	w.field("magusWaste")
	writeWasteSummary(w, t.Ledger())

	w.raw("}\n")
	_, err := out.Write(w.buf)
	return err
}

// writeSpanEvent emits one "X" complete event. Field order is fixed
// for byte determinism.
func writeSpanEvent(w *perfettoWriter, s *Span) {
	w.raw(`{"name":`)
	w.str(s.Kind.String())
	w.raw(`,"ph":"X","pid":1,"tid":`)
	w.int(int64(trackID(s.Kind)))
	w.raw(`,"ts":`)
	w.int(usec(s.Start))
	w.raw(`,"dur":`)
	end := s.End
	if end < s.Start {
		end = s.Start
	}
	w.int(usec(end - s.Start))
	w.raw(`,"args":{`)
	w.key("id")
	w.int(int64(s.ID))
	w.field("parent")
	w.int(int64(s.Parent))
	switch s.Kind {
	case KindWindow:
		w.field("index")
		w.int(int64(s.Index))
		writeEnergyFields(w, s.Energy)
	case KindTick:
		w.field("index")
		w.int(int64(s.Index))
	case KindDecision:
		d := &s.Decision
		w.field("throughput_gbs")
		w.float(d.ThroughputGBs)
		w.field("deriv_gbs")
		w.float(d.DerivGBs)
		w.field("ring_fill")
		w.int(int64(d.RingFill))
		w.field("trend")
		w.int(int64(d.Trend))
		w.field("high_freq")
		w.raw(boolStr(d.HighFreq))
		w.field("warmup")
		w.raw(boolStr(d.Warmup))
		w.field("missed")
		w.raw(boolStr(d.Missed))
		w.field("acted")
		w.raw(boolStr(d.Acted))
		w.field("prev_ghz")
		w.float(d.PrevGHz)
		w.field("target_ghz")
		w.float(d.TargetGHz)
		w.field("reason")
		w.str(d.Reason)
		w.field("health")
		w.str(d.Health)
		writeEnergyFields(w, s.Energy)
	case KindMSRWrite:
		w.field("socket")
		w.int(int64(s.Socket))
		w.field("ghz")
		w.float(s.GHz)
	case KindRun:
		writeEnergyFields(w, s.Energy)
	}
	w.raw("}}")
}

func writeEnergyFields(w *perfettoWriter, e EnergyAttr) {
	if e.Seconds == 0 {
		return
	}
	w.field("baseline_j")
	w.float(e.BaselineJ)
	w.field("useful_j")
	w.float(e.UsefulJ)
	w.field("waste_j")
	w.float(e.WasteJ)
	w.field("total_j")
	w.float(e.TotalJ)
}

func writeEnergyObject(w *perfettoWriter, e EnergyAttr) {
	w.raw("{")
	w.key("baseline_j")
	w.float(e.BaselineJ)
	w.field("useful_j")
	w.float(e.UsefulJ)
	w.field("waste_j")
	w.float(e.WasteJ)
	w.field("total_j")
	w.float(e.TotalJ)
	w.field("seconds")
	w.float(e.Seconds)
	w.raw("}")
}

// writeWasteSummary emits the ledger block spanlint validates.
func writeWasteSummary(w *perfettoWriter, l *Ledger) {
	w.raw("{")
	w.key("run")
	writeEnergyObject(w, l.Run())
	w.field("windows")
	w.raw("[")
	for i, win := range l.Windows() {
		if i > 0 {
			w.raw(",")
		}
		w.raw("{")
		w.key("index")
		w.int(int64(win.Index))
		w.field("energy")
		writeEnergyObject(w, win.Energy)
		w.raw("}")
	}
	w.raw("]")
	w.field("phases")
	w.raw("[")
	for i, ph := range l.Phases() {
		if i > 0 {
			w.raw(",")
		}
		w.raw("{")
		w.key("name")
		w.str(ph.Name)
		w.field("energy")
		writeEnergyObject(w, ph.Energy)
		w.raw("}")
	}
	w.raw("]")
	w.raw("}")
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

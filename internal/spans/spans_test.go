package spans

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestNilTracerSafe pins the disabled contract: every method on a nil
// tracer is a no-op (the harness instruments unguarded).
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Reserve(100)
	tr.SetPowerModel(PowerModel{})
	tr.BeginRun(Meta{System: "x"})
	tr.BeginTick(ms(1))
	tr.MSRWrite(ms(1), 0, 2.2)
	tr.Decision(ms(1), DecisionAttrs{})
	tr.AccumulateSocket(ms(1), 1, 10)
	tr.AccumulateSocketActual(ms(1), 1, 10, 50)
	tr.SetPhase("p")
	tr.Finish(ms(2))
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v, want nil", got)
	}
	if tr.Count(KindDecision) != 0 || tr.Ledger() != nil {
		t.Fatal("nil tracer leaked state")
	}
	if (tr.Meta() != Meta{}) {
		t.Fatal("nil tracer meta not zero")
	}
	if err := tr.WritePerfetto(discard{}); err != nil {
		t.Fatalf("nil WritePerfetto: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestCausalityTree drives a small synthetic run and checks the full
// parent/child structure: run → window → tick → decision → msr_write.
func TestCausalityTree(t *testing.T) {
	tr := New(2) // 2 ticks per window
	tr.BeginRun(Meta{System: "IntelA100", Workload: "srad", Governor: "magus", Seed: 7})

	// Attach-time write before any tick must parent to the run.
	tr.MSRWrite(0, 0, 2.2)
	tr.MSRWrite(0, 1, 2.2)

	// In the real runtime the governor writes the MSR *before* the
	// decision is emitted (setUncore → emit inside one Invoke), so the
	// write lands in the pending buffer and the decision adopts it.
	tr.BeginTick(ms(300))
	tr.MSRWrite(ms(300), 0, 2.2)
	tr.Decision(ms(300), DecisionAttrs{Trend: 1, TargetGHz: 2.2, PrevGHz: 2.0, Reason: "trend-up"})

	tr.BeginTick(ms(600))
	tr.Decision(ms(600), DecisionAttrs{Trend: -1, TargetGHz: 2.0, PrevGHz: 2.2, Reason: "trend-down"})

	tr.BeginTick(ms(900)) // third tick → second window opens
	tr.Finish(ms(1200))

	if got, want := tr.Count(KindRun), 1; got != want {
		t.Fatalf("runs = %d, want %d", got, want)
	}
	if got, want := tr.Count(KindWindow), 2; got != want {
		t.Fatalf("windows = %d, want %d", got, want)
	}
	if got, want := tr.Count(KindTick), 3; got != want {
		t.Fatalf("ticks = %d, want %d", got, want)
	}
	if got, want := tr.Count(KindDecision), 2; got != want {
		t.Fatalf("decisions = %d, want %d", got, want)
	}
	if got, want := tr.Count(KindMSRWrite), 3; got != want {
		t.Fatalf("msr writes = %d, want %d", got, want)
	}

	byID := make(map[ID]*Span)
	all := tr.Spans()
	for i := range all {
		byID[all[i].ID] = &all[i]
	}
	var runID ID
	for i := range all {
		s := &all[i]
		switch s.Kind {
		case KindRun:
			runID = s.ID
			if s.Parent != 0 {
				t.Errorf("run parent = %d, want 0", s.Parent)
			}
		case KindWindow:
			if byID[s.Parent].Kind != KindRun {
				t.Errorf("window %d parent kind = %v, want run", s.ID, byID[s.Parent].Kind)
			}
		case KindTick:
			if byID[s.Parent].Kind != KindWindow {
				t.Errorf("tick %d parent kind = %v, want window", s.ID, byID[s.Parent].Kind)
			}
		case KindDecision:
			if byID[s.Parent].Kind != KindTick {
				t.Errorf("decision %d parent kind = %v, want tick", s.ID, byID[s.Parent].Kind)
			}
		}
	}

	// MSR-write parentage: the two attach-time writes → run; the
	// in-invocation write → first decision.
	var writeParents []Kind
	decisionParented := 0
	for i := range all {
		s := &all[i]
		if s.Kind != KindMSRWrite {
			continue
		}
		pk := byID[s.Parent].Kind
		writeParents = append(writeParents, pk)
		if pk == KindDecision {
			decisionParented++
		}
		if pk == KindRun && s.Parent != runID {
			t.Errorf("write %d parented to non-root run %d", s.ID, s.Parent)
		}
	}
	if writeParents[0] != KindRun || writeParents[1] != KindRun {
		t.Errorf("attach-time write parents = %v, want run,run", writeParents[:2])
	}
	if decisionParented != 1 {
		t.Errorf("decision-parented writes = %d, want 1", decisionParented)
	}

	// Every span must be closed after Finish, with End >= Start.
	for i := range all {
		s := &all[i]
		if s.Open() {
			t.Errorf("span %d (%v) still open after Finish", s.ID, s.Kind)
		}
		if s.End < s.Start {
			t.Errorf("span %d end %v < start %v", s.ID, s.End, s.Start)
		}
	}

	// Sample-and-hold: decision 1 closes when decision 2 opens.
	var decs []*Span
	for i := range all {
		if all[i].Kind == KindDecision {
			decs = append(decs, &all[i])
		}
	}
	if decs[0].End != ms(600) {
		t.Errorf("decision 1 end = %v, want %v (next decision)", decs[0].End, ms(600))
	}
	if decs[1].End != ms(1200) {
		t.Errorf("decision 2 end = %v, want run end %v", decs[1].End, ms(1200))
	}
}

// TestReserveNoRealloc pins the arena contract: after Reserve(n),
// recording n spans does not move the backing array.
func TestReserveNoRealloc(t *testing.T) {
	tr := New(10)
	tr.Reserve(128) // 1 run + 59 ticks + 6 windows fits
	tr.BeginRun(Meta{})
	base := &tr.Spans()[:1][0]
	for i := 1; i < 60; i++ {
		tr.BeginTick(ms(300 * i))
	}
	if &tr.Spans()[0] != base {
		t.Fatal("span arena reallocated despite Reserve")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		tr2 := New(10)
		tr2.Reserve(512)
		tr2.BeginRun(Meta{})
		for i := 1; i < 400; i++ {
			tr2.BeginTick(ms(300 * i))
		}
	}); allocs > 6 { // tracer + arena + pending buffer, amortised
		t.Fatalf("reserved recording allocated %v times per run", allocs)
	}
}

// TestDoubleBeginRunAndFinishIdempotent pins re-entry safety.
func TestDoubleBeginRunAndFinishIdempotent(t *testing.T) {
	tr := New(0)
	tr.BeginRun(Meta{System: "a"})
	tr.BeginRun(Meta{System: "b"}) // ignored
	if tr.Meta().System != "a" {
		t.Fatalf("second BeginRun overwrote meta: %q", tr.Meta().System)
	}
	tr.BeginTick(ms(300))
	tr.Finish(ms(600))
	n := len(tr.Spans())
	tr.Finish(ms(900))
	tr.BeginTick(ms(900))
	if len(tr.Spans()) != n+1 { // BeginTick after Finish still records (ignored by harness)
		// Not a hard error either way; just pin it doesn't panic.
		t.Logf("spans after finish: %d → %d", n, len(tr.Spans()))
	}
}

// TestKindString covers the Stringer.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRun: "run", KindWindow: "window", KindTick: "tick",
		KindDecision: "decision", KindMSRWrite: "msr_write", numKinds: "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

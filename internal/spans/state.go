package spans

import (
	"fmt"
	"time"
)

// PendingWrite is one buffered MSR write awaiting its decision parent.
type PendingWrite struct {
	At     time.Duration
	Socket int
	GHz    float64
}

// LedgerState is the energy ledger's full mutable state. The phase map
// is flattened into first-seen order so the encoding is deterministic.
type LedgerState struct {
	Run      EnergyAttr
	Window   EnergyAttr
	WindowID ID
	WindowIx int
	Decision EnergyAttr
	DecID    ID

	Windows []WindowEnergy

	Phase  string
	Phases []PhaseEnergy
}

// TracerState is a tracer's full mutable state: the span arena, open
// span cursors, pending writes, the power model and the ledger. The
// window grouping is recorded so a restore target built with a
// different New(windowTicks) is rejected.
type TracerState struct {
	Meta        Meta
	WindowTicks int
	Spans       []Span

	Run      ID
	Window   ID
	Tick     ID
	Decision ID
	LastTick ID

	TickCount   int
	WindowCount int

	Pending []PendingWrite
	ByKind  []int

	Finished   bool
	FinishedAt time.Duration

	Model        PowerModel
	ModelPresent bool

	Ledger LedgerState
}

// State captures the tracer; nil for a nil (disabled) tracer.
func (t *Tracer) State() *TracerState {
	if t == nil {
		return nil
	}
	st := &TracerState{
		Meta:         t.meta,
		WindowTicks:  t.windowTicks,
		Spans:        append([]Span(nil), t.spans...),
		Run:          t.run,
		Window:       t.window,
		Tick:         t.tick,
		Decision:     t.decision,
		LastTick:     t.lastTick,
		TickCount:    t.tickCount,
		WindowCount:  t.windowCount,
		ByKind:       append([]int(nil), t.byKind[:]...),
		Finished:     t.finished,
		FinishedAt:   t.finishedAt,
		Model:        t.model,
		ModelPresent: t.modelPresent,
	}
	for _, p := range t.pending {
		st.Pending = append(st.Pending, PendingWrite{At: p.at, Socket: p.socket, GHz: p.ghz})
	}
	l := &t.ledger
	st.Ledger = LedgerState{
		Run:      l.run,
		Window:   l.window,
		WindowID: l.windowID,
		WindowIx: l.windowIx,
		Decision: l.decision,
		DecID:    l.decID,
		Windows:  append([]WindowEnergy(nil), l.windows...),
		Phase:    l.phase,
	}
	for _, name := range l.phaseOrder {
		st.Ledger.Phases = append(st.Ledger.Phases, PhaseEnergy{Name: name, Energy: *l.phaseAttr[name]})
	}
	return st
}

// Restore overwrites a tracer built with the same window grouping.
func (t *Tracer) Restore(st *TracerState) error {
	if t == nil {
		if st != nil {
			return fmt.Errorf("spans: restore state into a nil tracer")
		}
		return nil
	}
	if st == nil {
		return fmt.Errorf("spans: restore nil state into an enabled tracer")
	}
	if st.WindowTicks != t.windowTicks {
		return fmt.Errorf("spans: restore window grouping %d, tracer built with %d", st.WindowTicks, t.windowTicks)
	}
	if len(st.ByKind) != int(numKinds) {
		return fmt.Errorf("spans: restore has %d span kinds, tracer knows %d", len(st.ByKind), numKinds)
	}
	t.meta = st.Meta
	t.spans = append(t.spans[:0], st.Spans...)
	t.run = st.Run
	t.window = st.Window
	t.tick = st.Tick
	t.decision = st.Decision
	t.lastTick = st.LastTick
	t.tickCount = st.TickCount
	t.windowCount = st.WindowCount
	t.pending = t.pending[:0]
	for _, p := range st.Pending {
		t.pending = append(t.pending, pendingWrite{at: p.At, socket: p.Socket, ghz: p.GHz})
	}
	copy(t.byKind[:], st.ByKind)
	t.finished = st.Finished
	t.finishedAt = st.FinishedAt
	t.model = st.Model
	t.modelPresent = st.ModelPresent

	l := &t.ledger
	l.run = st.Ledger.Run
	l.window = st.Ledger.Window
	l.windowID = st.Ledger.WindowID
	l.windowIx = st.Ledger.WindowIx
	l.decision = st.Ledger.Decision
	l.decID = st.Ledger.DecID
	l.windows = append(l.windows[:0], st.Ledger.Windows...)
	l.phase = st.Ledger.Phase
	l.phaseAttr = nil
	l.phaseOrder = nil
	for _, p := range st.Ledger.Phases {
		if l.phaseAttr == nil {
			l.phaseAttr = make(map[string]*EnergyAttr, len(st.Ledger.Phases))
		}
		e := p.Energy
		l.phaseAttr[p.Name] = &e
		l.phaseOrder = append(l.phaseOrder, p.Name)
	}
	return nil
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {120, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTrimOutliers(t *testing.T) {
	xs := []float64{10, 10.2, 9.9, 10.1, 10, 55} // 55 is an outlier
	out := TrimOutliers(xs)
	if len(out) != 5 {
		t.Fatalf("TrimOutliers kept %d values: %v", len(out), out)
	}
	for _, x := range out {
		if x > 11 {
			t.Fatalf("outlier %v survived", x)
		}
	}
	if got := TrimmedMean(xs); got > 10.3 {
		t.Fatalf("TrimmedMean = %v, want ~10.04", got)
	}
	// Fewer than 4 samples: untouched.
	small := []float64{1, 100, 3}
	if got := TrimOutliers(small); len(got) != 3 {
		t.Fatalf("small-sample trim = %v", got)
	}
}

func TestTrimOutliersDoesNotMutate(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 500}
	TrimOutliers(xs)
	if xs[4] != 500 {
		t.Fatal("TrimOutliers mutated its input")
	}
}

func TestJaccard(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	if got := Jaccard(a, b); !almost(got, 1.0/3.0, 1e-12) {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Fatalf("self Jaccard = %v, want 1", got)
	}
	empty := []bool{false, false}
	if got := Jaccard(empty, empty); got != 1 {
		t.Fatalf("empty-union Jaccard = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length-mismatch Jaccard did not panic")
		}
	}()
	Jaccard(a, empty)
}

// Property: Jaccard is symmetric and bounded in [0,1].
func TestJaccardProperties(t *testing.T) {
	prop := func(bits []byte) bool {
		a := make([]bool, len(bits))
		b := make([]bool, len(bits))
		for i, x := range bits {
			a[i] = x&1 != 0
			b[i] = x&2 != 0
		}
		j1 := Jaccard(a, b)
		j2 := Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 5, Label: "a"},
		{X: 2, Y: 3, Label: "b"},
		{X: 3, Y: 2, Label: "c"},
		{X: 3, Y: 4, Label: "dominated-by-b"},
		{X: 5, Y: 1, Label: "d"},
		{X: 6, Y: 6, Label: "dominated-hard"},
	}
	front := ParetoFront(pts)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if len(front) != len(want) {
		t.Fatalf("front = %+v", front)
	}
	for _, p := range front {
		if !want[p.Label] {
			t.Fatalf("unexpected front member %q", p.Label)
		}
	}
	// Sorted by X.
	for i := 1; i < len(front); i++ {
		if front[i].X < front[i-1].X {
			t.Fatalf("front not sorted: %+v", front)
		}
	}
}

// Property: no front member dominates another front member, and every
// excluded point is dominated by some front member.
func TestParetoFrontProperties(t *testing.T) {
	prop := func(raw []struct{ X, Y int8 }) bool {
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{X: float64(r.X), Y: float64(r.Y)}
		}
		front := ParetoFront(pts)
		for i, p := range front {
			for j, q := range front {
				if i != j && Dominates(p, q) {
					return false
				}
			}
		}
		inFront := func(p Point) bool {
			for _, q := range front {
				if q.X == p.X && q.Y == p.Y {
					return true
				}
			}
			return false
		}
		for _, p := range pts {
			if inFront(p) {
				continue
			}
			dominated := false
			for _, q := range front {
				if Dominates(q, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceToFront(t *testing.T) {
	front := []Point{{X: 0, Y: 0}}
	if got := DistanceToFront(Point{X: 3, Y: 4}, front, 1, 1); !almost(got, 5, 1e-12) {
		t.Fatalf("distance = %v, want 5", got)
	}
	if got := DistanceToFront(Point{X: 3, Y: 4}, front, 3, 4); !almost(got, math.Sqrt2, 1e-12) {
		t.Fatalf("scaled distance = %v, want sqrt2", got)
	}
	if !math.IsInf(DistanceToFront(Point{}, nil, 1, 1), 1) {
		t.Fatal("distance to empty front should be +Inf")
	}
}

func TestHasNaN(t *testing.T) {
	if HasNaN([]float64{1, 2, 3}) {
		t.Fatal("finite slice flagged as NaN")
	}
	if !HasNaN([]float64{1, math.NaN(), 3}) {
		t.Fatal("NaN not detected")
	}
	if HasNaN(nil) {
		t.Fatal("empty slice flagged as NaN")
	}
}

// TestPercentileNaNPropagates pins the NaN policy: sort.Float64s
// leaves NaNs in unspecified positions, so a quartile over NaN-tainted
// data must be NaN, never a plausible-looking garbage value.
func TestPercentileNaNPropagates(t *testing.T) {
	xs := []float64{5, math.NaN(), 1, 3, 2, 4}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if v := Percentile(xs, p); !math.IsNaN(v) {
			t.Fatalf("Percentile(%v, %v) = %v, want NaN", xs, p, v)
		}
	}
}

// TestTrimOutliersNaNPolicy: a NaN input must survive trimming (so the
// caller sees the corruption), and must not cause finite samples to be
// dropped alongside it.
func TestTrimOutliersNaNPolicy(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3, 4, 100}
	got := TrimOutliers(xs)
	if len(got) != len(xs) {
		t.Fatalf("NaN-tainted input must be returned unchanged: got %d of %d values", len(got), len(xs))
	}
	var nans int
	for _, v := range got {
		if math.IsNaN(v) {
			nans++
		}
	}
	if nans != 1 {
		t.Fatalf("NaN silently dropped: %v", got)
	}
}

func TestTrimmedMeanNaNPropagates(t *testing.T) {
	if v := TrimmedMean([]float64{1, 2, math.NaN(), 3, 4}); !math.IsNaN(v) {
		t.Fatalf("TrimmedMean over NaN-tainted input = %v, want NaN", v)
	}
	// Finite data is unaffected by the NaN path.
	if v := TrimmedMean([]float64{1, 2, 3, 4, 100}); math.IsNaN(v) || v > 3 {
		t.Fatalf("finite trimmed mean = %v, want outlier 100 trimmed", v)
	}
}

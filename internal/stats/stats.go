// Package stats provides the small statistical toolkit the evaluation
// harness needs: summary statistics, the outlier-trimmed averaging the
// paper applies to repeated runs (§6), Jaccard similarity over binary
// burst sequences (Table 1), and Pareto-frontier extraction for the
// threshold sensitivity analysis (Figure 7).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// HasNaN reports whether xs contains a NaN.
func HasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
// NaN inputs poison the result: sort.Float64s leaves NaNs in
// unspecified positions, so rather than returning a garbage quartile
// the function propagates NaN, which every caller can detect.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if HasNaN(xs) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TrimOutliers removes values outside [Q1 - 1.5·IQR, Q3 + 1.5·IQR] and
// returns the survivors. With fewer than four samples it returns the
// input unchanged (quartiles are meaningless). This is the "outliers were
// removed, and the average of the remaining results was calculated"
// procedure of §6.
//
// NaN policy: a NaN input makes the fences NaN, and every `x >= lo`
// comparison fails — an earlier version therefore dropped *all*
// samples (NaN and finite alike) and fell back to returning the input,
// silently disabling trimming. Worse, a NaN among otherwise-finite
// samples would be silently discarded, hiding a corrupted run (e.g. a
// faulted repeat) inside a clean-looking mean. NaNs now poison the
// result explicitly: the input is returned unchanged, NaNs included,
// so TrimmedMean propagates NaN and the corruption is visible to the
// caller.
func TrimOutliers(xs []float64) []float64 {
	if len(xs) < 4 || HasNaN(xs) {
		return append([]float64(nil), xs...)
	}
	q1 := Percentile(xs, 25)
	q3 := Percentile(xs, 75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		// Unreachable for finite inputs (the quartiles themselves are
		// always inside the fences), but kept as a safety net.
		return append([]float64(nil), xs...)
	}
	return out
}

// TrimmedMean is Mean(TrimOutliers(xs)). A NaN anywhere in xs yields
// NaN (see TrimOutliers' NaN policy).
func TrimmedMean(xs []float64) float64 { return Mean(TrimOutliers(xs)) }

// Jaccard returns |A∩B| / |A∪B| for two binary sequences of equal
// length, where membership means a true element at that index. Two
// sequences with an empty union (no bursts in either) are defined as
// identical (1.0). It panics when lengths differ.
func Jaccard(a, b []bool) float64 {
	if len(a) != len(b) {
		panic("stats: Jaccard sequences differ in length")
	}
	var inter, union int
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] || b[i] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Point is a candidate in a two-objective minimisation (Figure 7 plots
// runtime on one axis and energy on the other; both are minimised).
type Point struct {
	X, Y  float64
	Label string
}

// ParetoFront returns the subset of pts not dominated by any other point,
// sorted by X. Point p dominates q when p.X <= q.X, p.Y <= q.Y and p is
// strictly better in at least one objective.
func ParetoFront(pts []Point) []Point {
	front := make([]Point, 0, len(pts))
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.X <= p.X && q.Y <= p.Y && (q.X < p.X || q.Y < p.Y) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].X != front[j].X {
			return front[i].X < front[j].X
		}
		return front[i].Y < front[j].Y
	})
	return front
}

// Dominates reports whether p dominates q in two-objective minimisation.
func Dominates(p, q Point) bool {
	return p.X <= q.X && p.Y <= q.Y && (p.X < q.X || p.Y < q.Y)
}

// DistanceToFront returns the minimum Euclidean distance from p to any
// point of front, after normalising both axes by the provided scales.
// The paper uses "on or close to the Pareto frontier" as its criterion
// for the default threshold set; this quantifies "close".
func DistanceToFront(p Point, front []Point, xScale, yScale float64) float64 {
	if len(front) == 0 {
		return math.Inf(1)
	}
	if xScale == 0 {
		xScale = 1
	}
	if yScale == 0 {
		yScale = 1
	}
	best := math.Inf(1)
	for _, q := range front {
		dx := (p.X - q.X) / xScale
		dy := (p.Y - q.Y) / yScale
		if d := math.Hypot(dx, dy); d < best {
			best = d
		}
	}
	return best
}

package magus

import (
	"io"
	"time"

	"github.com/spear-repro/magus/internal/cluster"
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/experiments"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/hsmp"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/sketch"
)

// This file exposes the extensions beyond the paper's evaluation:
// the ablation study of MAGUS's design choices, the model-based
// related-work comparator, the multi-node power-budget setting the
// paper motivates in §6.1, and the AMD/HSMP portability path the paper
// sketches in §6.6.

// ---- Ablation study ----

// AblationResult is the variant × application design study.
type AblationResult = experiments.AblationResult

// AblationRow is one of its cells.
type AblationRow = experiments.AblationRow

// RunAblation executes the ablation matrix (full MAGUS, detector off,
// short derivative, warm-up at max, model-based, UPS) on Intel+A100.
func RunAblation(opt ExperimentOptions) (AblationResult, error) {
	return experiments.Ablation(opt)
}

// ---- Model-based comparator (related work, §7) ----

// ModelBasedConfig parameterises the model-based uncore policy.
type ModelBasedConfig = governor.ModelBasedConfig

// ModelBased selects the minimal sufficient uncore frequency from an
// offline-profiled bandwidth model.
type ModelBased = governor.ModelBased

// NewModelBased builds the model-based policy; bwModel maps an uncore
// frequency in GHz to deliverable system bandwidth in GB/s.
func NewModelBased(cfg ModelBasedConfig, bwModel func(ghz float64) float64) *ModelBased {
	return governor.NewModelBased(cfg, bwModel)
}

// BandwidthModelFor returns the exact bandwidth model of a node preset
// — what an offline profiling pass would measure.
func BandwidthModelFor(cfg NodeConfig) func(ghz float64) float64 {
	return func(ghz float64) float64 {
		return float64(cfg.Sockets) * cfg.BWAt(ghz)
	}
}

// ---- DUF baseline (related work: André et al.) ----

// DUFConfig parameterises the DUF slowdown-budget governor.
type DUFConfig = governor.DUFConfig

// DUF is the slowdown-budget uncore baseline from André et al.
type DUF = governor.DUF

// NewDUF builds a DUF governor (zero-value config = 5 % budget).
func NewDUF(cfg DUFConfig) *DUF { return governor.NewDUF(cfg) }

// ---- Power capping (related work: Guermouche, IPDPSW '22) ----

// PowerCapped composes any governor with a RAPL PL1 package power cap.
type PowerCapped = governor.PowerCapped

// WithPowerCap wraps inner with a per-socket PL1 cap of capW watts;
// the node's RAPL clamp enforces it autonomously while inner keeps
// scaling the uncore below the cap.
func WithPowerCap(inner Governor, capW float64) *PowerCapped {
	return governor.WithPowerCap(inner, capW)
}

// ---- Cluster power budgets (§6.1) ----

// ClusterNodeSpec assigns one cluster member its hardware, workload,
// governor and seed.
type ClusterNodeSpec = cluster.NodeSpec

// ClusterResult aggregates a batch run: per-node and cluster-wide
// power traces, makespan, energy, and budget analytics.
type ClusterResult = cluster.Result

// RunCluster executes a batch of nodes in lockstep.
func RunCluster(specs []ClusterNodeSpec, sampleEvery time.Duration) (ClusterResult, error) {
	return cluster.Run(specs, sampleEvery)
}

// UniformCluster builds count identical nodes running apps round-robin
// under governors from factory (nil = vendor default). Empty apps or a
// non-positive count is an error.
func UniformCluster(cfg NodeConfig, apps []*Workload, count int, factory GovernorFactory, baseSeed int64) ([]ClusterNodeSpec, error) {
	return cluster.Uniform(cfg, apps, count, factory, baseSeed)
}

// ---- Fleet-scale sharded cluster engine ----

// ClusterOptions configures RunClusterFleet: shard count, telemetry
// retention mode, top-K member summaries and the uncore waste ledger.
type ClusterOptions = cluster.Options

// ClusterTelemetryMode selects full per-member traces or
// aggregate-only retention for large fleets.
type ClusterTelemetryMode = cluster.TelemetryMode

// Telemetry retention modes for ClusterOptions.Telemetry.
const (
	ClusterTelemetryFull      = cluster.TelemetryFull
	ClusterTelemetryAggregate = cluster.TelemetryAggregate
)

// ClusterMemberSummary is one member's per-run roll-up (the TopK
// substitute for full per-member traces at fleet scale).
type ClusterMemberSummary = cluster.MemberSummary

// RunClusterFleet executes a batch of nodes on the sharded cluster
// engine: members are partitioned into contiguous shards stepped
// concurrently, with output byte-identical to RunCluster for any
// shard count. The zero ClusterOptions reproduces RunCluster exactly.
func RunClusterFleet(specs []ClusterNodeSpec, opt ClusterOptions) (ClusterResult, error) {
	return cluster.RunFleet(specs, opt)
}

// FleetDist carries the fleet-wide telemetry distributions of a run
// with ClusterOptions.Dist set: mergeable quantile-sketch summaries
// (p50/p90/p99/max) of node power, uncore ratio, per-socket waste rate
// and attained bandwidth, merged across shards with byte-identical
// output for any shard count.
type FleetDist = cluster.FleetDist

// DistSummary is one distribution's quantile summary (count, min,
// p50/p90/p99, max, mean) as produced by the log-bucket sketch.
type DistSummary = sketch.Summary

// FleetStudyOptions sizes the fleet-scale governor study.
type FleetStudyOptions = experiments.FleetOptions

// FleetStudyResult is the per-governor fleet comparison: energy,
// peak/average power, uncore waste attribution and time over a fleet
// power budget.
type FleetStudyResult = experiments.FleetResult

// FleetStudyCell is one governor's row of the study.
type FleetStudyCell = experiments.FleetCell

// RunFleetStudy runs a mixed-preset fleet (Intel+A100, Intel+4xA100,
// Intel+Max1550 round-robin) under the vendor default, MAGUS and UPS,
// scoring each against a power budget anchored at a fraction of the
// default governor's peak.
func RunFleetStudy(opt FleetStudyOptions) (FleetStudyResult, error) {
	return experiments.FleetStudy(opt)
}

// ---- Per-socket scaling (future-work extension) ----

// PerSocket runs one MAGUS instance per CPU socket, each fed by that
// socket's own memory-controller counters — the natural refinement for
// NUMA-imbalanced workloads, where the paper's single system-wide
// signal forces the quiet socket to follow the busy one.
type PerSocket = core.PerSocket

// NewPerSocket builds the per-socket runtime; requires an Env with
// SocketPCM monitors (BuildEnv provides them).
func NewPerSocket(cfg Config) *PerSocket { return core.NewPerSocket(cfg) }

// NUMAStudyResult compares single-domain MAGUS with per-socket scaling
// on the numa_etl workload.
type NUMAStudyResult = experiments.NUMAStudyResult

// RunNUMAStudy executes the comparison on Intel+A100.
func RunNUMAStudy(opt ExperimentOptions) (NUMAStudyResult, error) {
	return experiments.NUMAStudy(opt)
}

// ---- Measurement-noise robustness ----

// NoiseStudyResult sweeps MAGUS under increasingly noisy throughput
// measurement.
type NoiseStudyResult = experiments.NoiseStudyResult

// RunNoiseStudy executes the robustness sweep on one application.
func RunNoiseStudy(app string, opt ExperimentOptions) (NoiseStudyResult, error) {
	return experiments.NoiseStudy(app, opt)
}

// ---- AMD / HSMP portability (§6.6) ----

// HSMPMailbox is the simulated AMD Host System Management Port: DF
// P-state control and bandwidth/power telemetry over a node.
type HSMPMailbox = hsmp.Mailbox

// HSMPFunction identifies a mailbox message.
type HSMPFunction = hsmp.Function

// HSMP mailbox functions.
const (
	HSMPGetSocketPower  = hsmp.GetSocketPower
	HSMPGetDDRBandwidth = hsmp.GetDDRBandwidth
	HSMPSetDFPstate     = hsmp.SetDFPstate
	HSMPGetDFPstate     = hsmp.GetDFPstate
	HSMPGetFclkMclk     = hsmp.GetFclkMclk
)

// AMDEpycMI250 returns the EPYC-class heterogeneous node preset used
// by the portability demonstration.
func AMDEpycMI250() NodeConfig { return hsmp.AMDEpycMI250() }

// NewHSMPMailbox builds a mailbox over a node whose uncore plays the
// role of the Infinity Fabric.
func NewHSMPMailbox(n *Node) *HSMPMailbox { return hsmp.NewMailbox(n) }

// BuildHSMPEnv wires a governor environment whose frequency control
// goes through the HSMP adapter (four discrete DF P-states) — the
// unmodified MAGUS runtime attaches to it directly.
func BuildHSMPEnv(n *Node, mb *HSMPMailbox) *Env { return hsmp.BuildEnv(n, mb) }

// ---- Fault injection & graceful degradation ----

// FaultPlan is a deterministic, seeded fault schedule armed against
// the node's telemetry devices via Options.Faults.
type FaultPlan = faults.Plan

// Fault is one entry of a plan: a fault class (error, stall, stale,
// wild, loss) against one telemetry target (pcm, msr, rapl, nvml)
// over an onset/duration window at a given rate.
type Fault = faults.Fault

// FaultTally counts the injections that actually fired during a run.
type FaultTally = faults.Tally

// ErrFaultInjected is the sentinel wrapped by every injected device
// error.
var ErrFaultInjected = faults.ErrInjected

// SensorHealth is the per-sensor degradation state the runtime tracks:
// healthy → degraded (missed samples) → lost (sustained outage).
type SensorHealth = resilient.Health

// Sensor health states.
const (
	SensorHealthy  = resilient.Healthy
	SensorDegraded = resilient.Degraded
	SensorLost     = resilient.Lost
)

// ResilienceConfig tunes the runtime's sensor-read hardening (retry
// budget, backoff, read timeout, staleness and plausibility guards).
// The zero value selects the defaults; it is embedded in Config.
type ResilienceConfig = resilient.Config

// LoadFaultPlan resolves a preset name or a plan JSON file path.
func LoadFaultPlan(spec string) (*FaultPlan, error) { return faults.Load(spec) }

// ParseFaultPlan decodes and validates a plan from JSON.
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.Parse(r) }

// FaultPresets lists the built-in fault plans (sorted).
func FaultPresets() []string { return faults.PresetNames() }

// FaultPreset returns a copy of the named built-in plan.
func FaultPreset(name string) (*FaultPlan, bool) { return faults.Preset(name) }

// FaultSweepResult is the per-plan robustness sweep.
type FaultSweepResult = experiments.FaultSweepResult

// FaultPoint is one of its rows.
type FaultPoint = experiments.FaultPoint

// RunFaultSweep runs MAGUS on app under each named fault plan
// (empty = every preset) and compares against the clean run and the
// vendor-default baseline.
func RunFaultSweep(app string, plans []string, opt ExperimentOptions) (FaultSweepResult, error) {
	return experiments.FaultSweep(app, plans, opt)
}

// ---- Governor tournament (fork-from-prefix checkpoint sharing) ----

// TournamentOptions selects the tournament grid: systems × apps ×
// fault presets, with a bracket of MAGUS parameter variants.
type TournamentOptions = experiments.TournamentOptions

// TournamentEntry is one MAGUS parameter variant in the bracket.
type TournamentEntry = experiments.TournamentEntry

// TournamentResult is the tournament grid in canonical order.
type TournamentResult = experiments.TournamentResult

// TournamentCell is one entry's outcome in one grid cell.
type TournamentCell = experiments.TournamentCell

// DefaultTournamentVariants returns the stock parameter bracket.
func DefaultTournamentVariants() []TournamentEntry {
	return experiments.DefaultTournamentVariants()
}

// RunTournament races the vendor default, UPS, DUF, base MAGUS and
// each MAGUS parameter variant in every grid cell, reporting per-entry
// power-waste attribution. Unless opt.Scratch is set, MAGUS variants
// resume from a checkpoint of the base run taken just before their
// first divergent decision cycle instead of re-executing the shared
// prefix; the output is byte-identical either way (see
// docs/CHECKPOINT.md).
func RunTournament(opt TournamentOptions) (TournamentResult, error) {
	return experiments.Tournament(opt)
}

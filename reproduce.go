package magus

import (
	"time"

	"github.com/spear-repro/magus/internal/experiments"
)

// This file exposes the paper-reproduction entry points: one function
// per table/figure of the evaluation (§6). cmd/magus-bench renders
// their results; bench_test.go asserts the paper's claims against them.

// ExperimentOptions tunes reproduction cost (repeats, seed).
type ExperimentOptions = experiments.Options

// QuickExperiments returns single-repeat options for smoke runs.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }

// PaperExperiments returns the paper's methodology: five repeats with
// outlier-trimmed averaging.
func PaperExperiments() ExperimentOptions { return experiments.Paper() }

// Result types, one per experiment.
type (
	Figure1Result = experiments.Figure1Result
	Figure2Result = experiments.Figure2Result
	Figure4Result = experiments.Figure4Result
	Figure5Result = experiments.Figure5Result
	Figure6Result = experiments.Figure6Result
	Figure7Result = experiments.Figure7Result
	Table1Result  = experiments.Table1Result
	Table2Result  = experiments.Table2Result
	AppResult     = experiments.AppResult
)

// ReproduceFigure1 profiles UNet under the vendor default: dynamic
// core/GPU clocks, uncore pinned at max (§2).
func ReproduceFigure1(opt ExperimentOptions) (Figure1Result, error) {
	return experiments.Figure1(opt)
}

// ReproduceFigure2 runs UNet at the two uncore extremes: the ≈82 W /
// ≈21 % power-performance trade-off (§2).
func ReproduceFigure2(opt ExperimentOptions) (Figure2Result, error) {
	return experiments.Figure2(opt)
}

// ReproduceFigure4 regenerates one subplot of the end-to-end
// comparison; system is "Intel+A100", "Intel+Max1550" or
// "Intel+4A100" (§6.1).
func ReproduceFigure4(system string, opt ExperimentOptions) (Figure4Result, error) {
	return experiments.Figure4(system, opt)
}

// ReproduceFigure5 traces SRAD memory throughput under max/min pins,
// MAGUS and UPS (§6.2).
func ReproduceFigure5(opt ExperimentOptions) (Figure5Result, error) {
	return experiments.Figure5(opt)
}

// ReproduceFigure6 traces the SRAD uncore frequency under the three
// policies (§6.2).
func ReproduceFigure6(opt ExperimentOptions) (Figure6Result, error) {
	return experiments.Figure6(opt)
}

// ReproduceFigure7 sweeps MAGUS's thresholds on one application and
// extracts the (runtime, energy) Pareto frontier (§6.4).
func ReproduceFigure7(app string, opt ExperimentOptions) (Figure7Result, error) {
	return experiments.Figure7(app, opt)
}

// ReproduceTable1 computes burst-prediction Jaccard similarity for
// every Table 1 application (§6.3).
func ReproduceTable1(opt ExperimentOptions) (Table1Result, error) {
	return experiments.Table1(opt)
}

// ReproduceTable2 measures idle runtime overheads (power and
// invocation time) for MAGUS and UPS on both single-GPU systems
// (§6.5). idleWindow <= 0 selects the paper's 10 minutes.
func ReproduceTable2(idleWindow time.Duration, opt ExperimentOptions) (Table2Result, error) {
	return experiments.Table2(idleWindow, opt)
}

// SystemByName maps a system name to its node preset.
func SystemByName(name string) (NodeConfig, error) {
	return experiments.SystemByName(name)
}

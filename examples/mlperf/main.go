// MLPerf campaign: evaluate MAGUS against the vendor default and the
// UPScavenger baseline across the three MLPerf training workloads the
// paper uses (UNet, ResNet50, BERT-large) on the Intel+A100 system,
// with the paper's repeat-and-trim methodology.
//
//	go run ./examples/mlperf
package main

import (
	"fmt"
	"log"

	magus "github.com/spear-repro/magus"
)

const repeats = 5

func main() {
	system := magus.IntelA100()
	apps := []string{"unet", "resnet50", "bert_large"}

	fmt.Printf("MLPerf training on %s (%d repeats, outlier-trimmed)\n\n", system.Name, repeats)
	fmt.Printf("%-12s | %22s | %22s\n", "", "MAGUS", "UPS")
	fmt.Printf("%-12s | %6s %7s %7s | %6s %7s %7s\n",
		"app", "loss%", "power%", "energy%", "loss%", "power%", "energy%")

	for _, name := range apps {
		app, ok := magus.WorkloadByName(name)
		if !ok {
			log.Fatalf("%s missing from the catalog", name)
		}
		base, err := magus.RunRepeated(system, app,
			func() magus.Governor { return magus.NewDefaultGovernor() },
			repeats, magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		withMagus, err := magus.RunRepeated(system, app,
			func() magus.Governor { return magus.NewRuntime(magus.DefaultConfig()) },
			repeats, magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		withUPS, err := magus.RunRepeated(system, app,
			func() magus.Governor { return magus.NewUPS(magus.UPSConfig{}) },
			repeats, magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		m := magus.Compare(base, withMagus)
		u := magus.Compare(base, withUPS)
		fmt.Printf("%-12s | %6.1f %7.1f %7.1f | %6.1f %7.1f %7.1f\n",
			name, m.PerfLossPct, m.PowerSavingPct, m.EnergySavingPct,
			u.PerfLossPct, u.PowerSavingPct, u.EnergySavingPct)
	}

	fmt.Println("\nTraining epochs alternate data-loading bursts with GPU-bound phases;")
	fmt.Println("MAGUS drops the uncore to its minimum between bursts and predicts the")
	fmt.Println("next burst from the throughput derivative, which is where the savings")
	fmt.Println("come from (paper §6.1).")
}

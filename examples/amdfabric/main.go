// AMD fabric portability (§6.6): MAGUS's logic is vendor-neutral — it
// needs a memory-bandwidth signal and a fabric/uncore frequency
// control. This example attaches the unmodified MAGUS runtime to an
// EPYC-class node through a simulated amd_hsmp mailbox, where the
// "uncore" is the Infinity Fabric controlled through four discrete
// Data-Fabric P-states.
//
//	go run ./examples/amdfabric
package main

import (
	"fmt"
	"log"
	"time"

	magus "github.com/spear-repro/magus"
)

func run(withMagus bool) (runtimeS, energyJ float64) {
	cfg := magus.AMDEpycMI250()
	app, ok := magus.WorkloadByName("unet")
	if !ok {
		log.Fatal("unet missing from the catalog")
	}

	// Manual wiring (instead of magus.Run) to route frequency control
	// through the HSMP mailbox adapter.
	n := magus.NewNode(cfg)
	mb := magus.NewHSMPMailbox(n)

	var rt *magus.Runtime
	if withMagus {
		rt = magus.NewRuntime(magus.DefaultConfig())
		if err := rt.Attach(magus.BuildHSMPEnv(n, mb)); err != nil {
			log.Fatal(err)
		}
	}

	runner := newRunner(app, cfg, n)
	var now, next time.Duration
	for !runner.Done() && now < 5*time.Minute {
		if rt != nil && now >= next {
			d := rt.Invoke(now)
			if d <= 0 {
				d = rt.Interval()
			}
			next = now + d
		}
		runner.Step(now, time.Millisecond)
		n.SetDemand(runner.Demand())
		n.Step(now, time.Millisecond)
		now += time.Millisecond
	}
	pkg, drm, gpu := n.EnergyJ()

	if withMagus {
		resp, err := mb.Call(0, magus.HSMPGetFclkMclk, nil)
		if err != nil {
			log.Fatalf("HSMP GetFclkMclk: %v", err)
		}
		fmt.Printf("final fabric clock: %d MHz (mclk %d MHz); P-states available: %v GHz\n",
			resp[0], resp[1], mb.Levels())
	}
	return runner.Elapsed().Seconds(), pkg + drm + gpu
}

func main() {
	fmt.Println("MAGUS on an AMD EPYC + MI250 node via the HSMP fabric adapter")
	baseT, baseE := run(false)
	magT, magE := run(true)

	fmt.Printf("\n%-10s %10s %12s\n", "governor", "runtime", "energy")
	fmt.Printf("%-10s %9.1fs %11.0fJ\n", "auto", baseT, baseE)
	fmt.Printf("%-10s %9.1fs %11.0fJ\n", "magus", magT, magE)
	fmt.Printf("\nenergy saving %.1f%%, slowdown %.1f%%\n",
		(baseE-magE)/baseE*100, (magT-baseT)/baseT*100)
	fmt.Println("\nThe runtime is byte-identical to the Intel path; only the Env")
	fmt.Println("differs: uncore-limit writes quantise to DF P-states and the")
	fmt.Println("throughput signal comes from HSMP DDR-bandwidth telemetry.")
}

// newRunner builds a workload runner bound to the node's feedback.
func newRunner(app *magus.Workload, cfg magus.NodeConfig, n *magus.Node) *magus.WorkloadRunner {
	r := magus.NewWorkloadRunner(app, cfg.SystemBWGBs(), 1)
	r.SetAttained(n.AttainedGBs)
	return r
}

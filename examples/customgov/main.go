// Custom governor: the public API exposes the same node-access surface
// (MSR device, PCM throughput monitor, RAPL reader) the built-in
// policies use, so new uncore-scaling strategies are ~40 lines. This
// example implements a three-level ladder governor — min / mid / max
// uncore chosen by throughput bands — and races it against MAGUS.
//
//	go run ./examples/customgov
package main

import (
	"fmt"
	"log"
	"time"

	magus "github.com/spear-repro/magus"
)

// ladder scales the uncore across three levels by throughput band.
// Compared to MAGUS it is reactive (no trend prediction) and has no
// protection against rapidly fluctuating phases.
type ladder struct {
	env  *magus.Env
	low  float64 // below: min uncore
	high float64 // above: max uncore
	cur  float64
}

func (g *ladder) Name() string            { return "ladder" }
func (g *ladder) Interval() time.Duration { return 300 * time.Millisecond }

func (g *ladder) Attach(env *magus.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	g.env = env
	g.cur = env.UncoreMaxGHz
	return env.SetUncoreMax(g.cur)
}

func (g *ladder) Invoke(now time.Duration) time.Duration {
	// One PCM read per cycle, like MAGUS; charge the same cost.
	if g.env.Charge != nil {
		g.env.Charge(100*time.Millisecond, 0.3, 0.5)
	}
	thr, err := g.env.PCM.SystemMemoryThroughput(now)
	if err != nil {
		g.set(g.env.UncoreMaxGHz) // fail safe
		return 0
	}
	mid := (g.env.UncoreMinGHz + g.env.UncoreMaxGHz) / 2
	switch {
	case thr >= g.high:
		g.set(g.env.UncoreMaxGHz)
	case thr >= g.low:
		g.set(mid)
	default:
		g.set(g.env.UncoreMinGHz)
	}
	return 0
}

func (g *ladder) set(ghz float64) {
	if ghz == g.cur {
		return
	}
	if err := g.env.SetUncoreMax(ghz); err == nil {
		g.cur = ghz
	}
}

func main() {
	system := magus.IntelA100()
	apps := []string{"bfs", "srad", "unet"}

	fmt.Printf("custom ladder governor vs MAGUS on %s\n\n", system.Name)
	fmt.Printf("%-8s | %22s | %22s\n", "", "ladder", "MAGUS")
	fmt.Printf("%-8s | %6s %7s %7s | %6s %7s %7s\n",
		"app", "loss%", "power%", "energy%", "loss%", "power%", "energy%")

	for _, name := range apps {
		app, ok := magus.WorkloadByName(name)
		if !ok {
			log.Fatalf("%s missing from the catalog", name)
		}
		base, err := magus.Run(system, app, magus.NewDefaultGovernor(), magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		lad, err := magus.Run(system, app, &ladder{low: 60, high: 180}, magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		mag, err := magus.Run(system, app, magus.NewRuntime(magus.DefaultConfig()), magus.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		l := magus.Compare(base, lad)
		m := magus.Compare(base, mag)
		fmt.Printf("%-8s | %6.1f %7.1f %7.1f | %6.1f %7.1f %7.1f\n",
			name, l.PerfLossPct, l.PowerSavingPct, l.EnergySavingPct,
			m.PerfLossPct, m.PowerSavingPct, m.EnergySavingPct)
	}

	fmt.Println("\nOn steady workloads the ladder is competitive; on srad's")
	fmt.Println("high-frequency phases it chases the signal and loses performance,")
	fmt.Println("which is exactly the failure mode MAGUS's detector prevents (§3.2).")
}

// Quickstart: run one GPU-dominant application on a simulated
// heterogeneous node, first under the vendor-default uncore policy and
// then under the MAGUS runtime, and print the paper's three metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	magus "github.com/spear-repro/magus"
)

func main() {
	// The paper's first system: 2× Xeon Platinum 8380 + NVIDIA A100.
	system := magus.IntelA100()

	// UNet training — the paper's running example (Figures 1 and 2).
	app, ok := magus.WorkloadByName("unet")
	if !ok {
		log.Fatal("unet missing from the workload catalog")
	}

	// Baseline: vendor default. The uncore stays at its maximum
	// because GPU-dominant workloads never push the CPU near TDP.
	baseline, err := magus.Run(system, app, magus.NewDefaultGovernor(), magus.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// MAGUS: model-free uncore scaling from a single signal (memory
	// throughput) with high-frequency phase protection.
	runtime := magus.NewRuntime(magus.DefaultConfig())
	tuned, err := magus.Run(system, app, runtime, magus.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n\n", app.Name, system.Name)
	fmt.Printf("%-18s %10s %14s %12s\n", "governor", "runtime", "avg CPU power", "energy")
	fmt.Printf("%-18s %9.1fs %13.1fW %11.0fJ\n", "default", baseline.RuntimeS, baseline.AvgCPUPowerW, baseline.TotalEnergyJ())
	fmt.Printf("%-18s %9.1fs %13.1fW %11.0fJ\n", "magus", tuned.RuntimeS, tuned.AvgCPUPowerW, tuned.TotalEnergyJ())

	c := magus.Compare(baseline, tuned)
	fmt.Printf("\nMAGUS vs default: %.1f%% energy saved, %.1f%% CPU power saved, %.1f%% slower\n",
		c.EnergySavingPct, c.PowerSavingPct, c.PerfLossPct)

	s := runtime.Stats()
	fmt.Printf("runtime activity: %d decisions, %d tune events, %d high-frequency overrides\n",
		s.Invocations, s.TuneEvents, s.Overrides)
}

// Multi-GPU scenario: the paper's Intel+4A100 system (§6.1, Figure
// 4c). Energy savings shrink as GPUs are added — four A100-80GB boards
// idle near 200 W, so every percent of slowdown costs far more GPU
// energy than on the single-GPU system. This example quantifies that
// by running the same applications on both systems.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	magus "github.com/spear-repro/magus"
)

func main() {
	single := magus.IntelA100()
	multi := magus.Intel4A100()
	apps := []string{"gromacs", "lammps", "unet"}

	fmt.Println("MAGUS energy savings: single-GPU vs multi-GPU")
	fmt.Printf("%-10s | %28s | %28s\n", "", single.Name, multi.Name)
	fmt.Printf("%-10s | %6s %7s %7s %5s | %6s %7s %7s %5s\n",
		"app", "loss%", "power%", "energy%", "gpuW", "loss%", "power%", "energy%", "gpuW")

	for _, name := range apps {
		app, ok := magus.WorkloadByName(name)
		if !ok {
			log.Fatalf("%s missing from the catalog", name)
		}
		row := fmt.Sprintf("%-10s |", name)
		for _, system := range []magus.NodeConfig{single, multi} {
			base, err := magus.Run(system, app, magus.NewDefaultGovernor(), magus.Options{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			tuned, err := magus.Run(system, app, magus.NewRuntime(magus.DefaultConfig()), magus.Options{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			c := magus.Compare(base, tuned)
			avgGPU := base.GPUEnergyJ / base.RuntimeS
			row += fmt.Sprintf(" %6.1f %7.1f %7.1f %5.0f |",
				c.PerfLossPct, c.PowerSavingPct, c.EnergySavingPct, avgGPU)
		}
		fmt.Println(row)
	}

	// Show the idle-power amplification directly.
	idleSingle := magus.NewNode(single)
	idleMulti := magus.NewNode(multi)
	var gpuIdleSingle, gpuIdleMulti float64
	for i := 0; i < idleSingle.GPUCount(); i++ {
		gpuIdleSingle += single.GPUs[i].Power.IdleWatts
	}
	for i := 0; i < idleMulti.GPUCount(); i++ {
		gpuIdleMulti += multi.GPUs[i].Power.IdleWatts
	}
	fmt.Printf("\nGPU idle power: %.0f W (1×A100-40GB) vs %.0f W (4×A100-80GB)\n",
		gpuIdleSingle, gpuIdleMulti)
	fmt.Println("The fixed idle cost amplifies the energy penalty of any slowdown,")
	fmt.Println("which is why uncore-scaling energy savings shrink with GPU count")
	fmt.Println("even though CPU power savings stay the same (paper §6.1).")
}

package magus

import (
	"io"

	"github.com/spear-repro/magus/internal/experiments"
	"github.com/spear-repro/magus/internal/spans"
)

// This file exposes the decision-causality tracing layer: a
// deterministic, virtual-time span tracer (run → window → tick → MDFS
// decision → MSR write) with an energy-attribution ledger that
// decomposes uncore energy into baseline / useful / waste joules.
// Attach a tracer through Options.Spans; export it as Perfetto/Chrome
// trace-event JSON with WritePerfetto (viewable at ui.perfetto.dev).
// A nil Tracer disables tracing with zero overhead. See docs/TRACING.md.

// Tracer records a run's decision-causality spans and waste ledger.
// Tracers are single-run objects: like governors, create a fresh one
// per run and do not share them across parallel repeats.
type Tracer = spans.Tracer

// NewTracer returns an enabled tracer; windowTicks groups ticks into
// window spans (<= 0 selects the runtime's default window of 10).
func NewTracer(windowTicks int) *Tracer { return spans.New(windowTicks) }

// Span is one node of the recorded causality tree.
type Span = spans.Span

// SpanKind discriminates span types (run, window, tick, decision,
// msr_write).
type SpanKind = spans.Kind

// Span kinds, root to leaf.
const (
	SpanRun      = spans.KindRun
	SpanWindow   = spans.KindWindow
	SpanTick     = spans.KindTick
	SpanDecision = spans.KindDecision
	SpanMSRWrite = spans.KindMSRWrite
)

// DecisionSpanAttrs is the structured "why" carried by decision spans.
type DecisionSpanAttrs = spans.DecisionAttrs

// EnergyAttribution is one ledger bucket's integrated joules
// (baseline / useful / waste / independently-integrated total).
type EnergyAttribution = spans.EnergyAttr

// WasteLedger is the per-run energy-attribution ledger.
type WasteLedger = spans.Ledger

// WritePerfettoTrace writes tr's spans and ledger as Chrome
// trace-event JSON. Safe on a nil tracer (writes an empty trace).
func WritePerfettoTrace(w io.Writer, tr *Tracer) error { return tr.WritePerfetto(w) }

// WasteStudyResult compares each governor's uncore-energy attribution
// (baseline / useful / waste) on one workload.
type WasteStudyResult = experiments.WasteStudyResult

// WasteAttrCell is one governor's cell of the study.
type WasteAttrCell = experiments.WasteCell

// RunWasteStudy runs app on the named system under the vendor
// default, MAGUS and UPS with the causality tracer attached, and
// reduces each run's ledger into attribution rows — the
// `magus-bench -waste` surface.
func RunWasteStudy(system, app string, opt ExperimentOptions) (WasteStudyResult, error) {
	return experiments.WasteStudy(system, app, opt)
}

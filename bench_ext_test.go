package magus_test

// Extension benchmarks: the ablation study of MAGUS's design choices,
// the §6.1 cluster power-budget setting, and the §6.6 AMD/HSMP
// portability path.

import (
	"testing"
	"time"

	magus "github.com/spear-repro/magus"
)

// BenchmarkAblation runs the variant × application design study and
// reports the quantities each mechanism is responsible for.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.RunAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		full, _ := res.Get("magus", "srad")
		noHi, _ := res.Get("no-hifreq", "srad")
		b.ReportMetric(noHi.PerfLossPct-full.PerfLossPct, "hifreq-protects-srad-%")
		fullG, _ := res.Get("magus", "gemm")
		shortG, _ := res.Get("short-deriv", "gemm")
		b.ReportMetric(fullG.PowerSavingPct-shortG.PowerSavingPct, "derivspan-gains-gemm-%")
		mb, _ := res.Get("model-based", "srad")
		b.ReportMetric(mb.PerfLossPct, "modelbased-srad-loss-%")
	}
}

// BenchmarkClusterBudget runs the six-node batch with and without
// MAGUS and reports the aggregate-power improvement under a budget at
// 92 % of the unmanaged peak.
func BenchmarkClusterBudget(b *testing.B) {
	var apps []*magus.Workload
	for _, name := range []string{"bfs", "gemm", "where", "raytracing"} {
		p, ok := magus.WorkloadByName(name)
		if !ok {
			b.Fatalf("%s missing", name)
		}
		apps = append(apps, p)
	}
	for i := 0; i < b.N; i++ {
		baseSpecs, err := magus.UniformCluster(magus.IntelA100(), apps, 6, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		base, err := magus.RunCluster(baseSpecs, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		tunedSpecs, err := magus.UniformCluster(magus.IntelA100(), apps, 6,
			func() magus.Governor { return magus.NewRuntime(magus.DefaultConfig()) }, 1)
		if err != nil {
			b.Fatal(err)
		}
		tuned, err := magus.RunCluster(tunedSpecs, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		budget := base.PeakW * 0.92
		b.ReportMetric(base.PeakW-tuned.PeakW, "peak-reduction-W")
		b.ReportMetric((base.EnergyJ-tuned.EnergyJ)/base.EnergyJ*100, "cluster-energy-saving-%")
		b.ReportMetric((base.TimeOverBudget(budget)-tuned.TimeOverBudget(budget))*100, "budget-relief-pp")
	}
}

// BenchmarkMAGUSOnAMD runs the portability demonstration: unmodified
// MAGUS over the HSMP fabric adapter on an EPYC-class node.
func BenchmarkMAGUSOnAMD(b *testing.B) {
	cfg := magus.AMDEpycMI250()
	prog, ok := magus.WorkloadByName("unet")
	if !ok {
		b.Fatal("unet missing")
	}
	run := func(withMagus bool, seed int64) (float64, float64) {
		n := magus.NewNode(cfg)
		mb := magus.NewHSMPMailbox(n)
		runner := magus.NewWorkloadRunner(prog, cfg.SystemBWGBs(), seed)
		runner.SetAttained(n.AttainedGBs)
		var rt *magus.Runtime
		if withMagus {
			rt = magus.NewRuntime(magus.DefaultConfig())
			if err := rt.Attach(magus.BuildHSMPEnv(n, mb)); err != nil {
				b.Fatal(err)
			}
		}
		var now, next time.Duration
		for !runner.Done() && now < 5*time.Minute {
			if rt != nil && now >= next {
				d := rt.Invoke(now)
				if d <= 0 {
					d = rt.Interval()
				}
				next = now + d
			}
			runner.Step(now, time.Millisecond)
			n.SetDemand(runner.Demand())
			n.Step(now, time.Millisecond)
			now += time.Millisecond
		}
		pkg, drm, gpu := n.EnergyJ()
		return runner.Elapsed().Seconds(), pkg + drm + gpu
	}
	for i := 0; i < b.N; i++ {
		baseT, baseE := run(false, 1)
		magT, magE := run(true, 1)
		b.ReportMetric((baseE-magE)/baseE*100, "amd-energy-saving-%")
		b.ReportMetric((magT-baseT)/baseT*100, "amd-perf-loss-%")
	}
}

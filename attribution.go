package magus

import (
	"github.com/spear-repro/magus/internal/attrib"
	"github.com/spear-repro/magus/internal/experiments"
	"github.com/spear-repro/magus/internal/workload"
)

// This file exposes co-located (multi-tenant) workloads and per-tenant
// energy attribution: a time-slicing or fractional-GPU multiplexer runs
// several phase programs on one node (Options.Tenants), and
// the harness splits the node's measured energy across them — exactly
// when one tenant holds the device alone, by utilisation share
// otherwise, each sample labelled like the DCGM estimated fallback.
// See docs/ATTRIBUTION.md.

// TenantSpec binds one tenant's program into a colocation.
type TenantSpec = workload.TenantSpec

// ColocationSpec describes a multi-tenant run: tenants, sharing policy
// and round-robin quantum. Pass it through Options.Tenants with a
// nil program.
type ColocationSpec = workload.MuxSpec

// ColocationPolicy selects how tenants share the node.
type ColocationPolicy = workload.MuxPolicy

// Colocation policies.
const (
	// ColocateRoundRobin time-slices: each tenant owns the whole node
	// for one quantum, so every joule is attributed exactly.
	ColocateRoundRobin = workload.RoundRobin
	// ColocateFractional runs tenants concurrently under MPS-style GPU
	// fractions; attribution falls back to utilisation-share estimation
	// while more than one tenant is live.
	ColocateFractional = workload.Fractional
)

// TenantEnergy is one tenant's energy bill, split into the exact
// (exclusive-ownership) and estimated (utilisation-share) regimes.
type TenantEnergy = attrib.TenantEnergy

// TenantReport is a run's per-tenant attribution plus the
// independently integrated total it provably balances against
// (Result.Tenants on co-located runs).
type TenantReport = attrib.Report

// Colocation presets — the TenantStudy scenario matrix.
var (
	// NoisyNeighborColocation time-slices a steady memory-bound victim
	// against a bursty aggressor.
	NoisyNeighborColocation = workload.NoisyNeighbor
	// FractionalGPUColocation shares the GPU 70/30 between two
	// concurrent tenants.
	FractionalGPUColocation = workload.FractionalGPU
	// BurstColocation time-slices two burst-heavy applications on a
	// coarse quantum.
	BurstColocation = workload.BurstColocation
)

// TenantStudyResult is the co-located attribution study: per scenario
// and governor, who pays for the joules when workloads share a node.
type TenantStudyResult = experiments.TenantStudyResult

// TenantStudyCell is one (scenario, governor) cell of the study.
type TenantStudyCell = experiments.TenantCell

// RunTenantStudy runs every colocation scenario (noisy neighbor,
// fractional GPU, burst) under the vendor default and MAGUS with the
// waste ledger attached — the `magus-bench -tenants` surface.
func RunTenantStudy(system string, opt ExperimentOptions) (TenantStudyResult, error) {
	return experiments.TenantStudy(system, opt)
}

package magus_test

// Hot-path benchmark suite (docs/PERF.md). The per-layer benchmarks
// live next to their packages (internal/sim, internal/workload,
// internal/core, internal/node) under the same BenchmarkHotPath prefix;
// this one closes the loop with the full cell. CI runs
//
//	go test -run '^$' -bench '^BenchmarkHotPath' -benchmem -benchtime=1x ./...
//
// and cmd/benchgate compares the output against BENCH_hotpath.json.

import (
	"testing"

	magus "github.com/spear-repro/magus"
)

// BenchmarkHotPathFullCell measures one complete experiment cell (UNet
// on Intel+A100 under MAGUS, fixed seed) — the unit the evaluation
// matrix multiplies by apps × governors × systems × repeats.
func BenchmarkHotPathFullCell(b *testing.B) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("unet")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := magus.Run(cfg, prog, magus.NewRuntime(magus.DefaultConfig()),
			magus.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

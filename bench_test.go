package magus_test

// One benchmark per table and figure of the paper's evaluation (§6).
// Each iteration regenerates the experiment end-to-end on the
// simulated systems and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// prints, next to the usual ns/op, the reproduced numbers to compare
// against the paper (see EXPERIMENTS.md for the side-by-side record).

import (
	"testing"
	"time"

	magus "github.com/spear-repro/magus"
)

func benchOpts() magus.ExperimentOptions { return magus.QuickExperiments() }

// BenchmarkFigure1 regenerates the UNet motivation profile: dynamic
// core/GPU clocks with the uncore pinned at max.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UncoreGHz.Max(), "uncore-max-GHz")
		b.ReportMetric(res.GPUClockMHz.Max(), "gpu-peak-MHz")
	}
}

// BenchmarkFigure2 regenerates the uncore power/performance trade-off
// (paper: ≈82 W package-power drop, ≈21 % runtime increase).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PkgPowerDropW, "pkg-drop-W")
		b.ReportMetric(res.RuntimeIncreasePct, "runtime-inc-%")
		b.ReportMetric(res.MaxUncore.RuntimeS, "unet-runtime-s")
	}
}

func benchFigure4(b *testing.B, system string) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure4(system, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxEnergySaving(), "max-energy-saving-%")
		b.ReportMetric(res.MaxPerfLoss(), "max-perf-loss-%")
		var magusSum float64
		for _, a := range res.Apps {
			magusSum += a.MAGUS.EnergySavingPct
		}
		b.ReportMetric(magusSum/float64(len(res.Apps)), "mean-energy-saving-%")
	}
}

// BenchmarkFigure4a: end-to-end comparison on Intel+A100 (paper: up to
// 27 % energy savings, < 5 % performance loss).
func BenchmarkFigure4a(b *testing.B) { benchFigure4(b, "Intel+A100") }

// BenchmarkFigure4b: Intel+Max1550 (paper: ≤ 4 % loss, up to 10 %
// energy savings, UPS eroded by its own overhead).
func BenchmarkFigure4b(b *testing.B) { benchFigure4(b, "Intel+Max1550") }

// BenchmarkFigure4c: Intel+4A100 multi-GPU (paper: modest energy
// savings — idle GPU power amplifies slowdown cost).
func BenchmarkFigure4c(b *testing.B) { benchFigure4(b, "Intel+4A100") }

// BenchmarkFigure5 regenerates the SRAD throughput case study (paper:
// MAGUS ≈14 % CPU power saving at 3 % slowdown; UPS ≈20 % at 7.9 %).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MAGUSvsDefault.PowerSavingPct, "magus-power-%")
		b.ReportMetric(res.MAGUSvsDefault.PerfLossPct, "magus-loss-%")
		b.ReportMetric(res.UPSvsDefault.PowerSavingPct, "ups-power-%")
		b.ReportMetric(res.UPSvsDefault.PerfLossPct, "ups-loss-%")
	}
}

// BenchmarkFigure6 regenerates the SRAD uncore-frequency traces and
// reports the high-frequency detector's engagement.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MAGUSHighFreqOverrides), "hi-freq-overrides")
		min := res.MAGUS.Values[0]
		for _, v := range res.MAGUS.Values {
			if v < min {
				min = v
			}
		}
		b.ReportMetric(min, "magus-min-GHz")
	}
}

// BenchmarkFigure7 regenerates the threshold-sensitivity Pareto sweep
// on SRAD (paper: the recommended defaults sit on or near the
// frontier).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceFigure7("srad", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "configs")
		b.ReportMetric(res.DefaultDistance(), "default-dist")
	}
}

// BenchmarkTable1 regenerates the burst-prediction Jaccard table
// (paper: scores up to 0.99; fdtd2d lowest at 0.40).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean(), "mean-jaccard")
		if j, ok := res.Get("unet"); ok {
			b.ReportMetric(j, "unet-jaccard")
		}
		if j, ok := res.Get("fdtd2d"); ok {
			b.ReportMetric(j, "fdtd2d-jaccard")
		}
	}
}

// BenchmarkTable2 regenerates the idle-overhead table (paper: MAGUS
// ≈1.1 % power / 0.1 s per invocation; UPS ≈4.9–7.9 % / 0.3 s). A
// two-minute idle window keeps the benchmark affordable; overhead
// ratios are duration-independent.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := magus.ReproduceTable2(2*time.Minute, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if r, ok := res.Get("Intel+A100", "magus"); ok {
			b.ReportMetric(r.PowerOverheadPct, "magus-a100-power-%")
			b.ReportMetric(r.InvocationS, "magus-invocation-s")
		}
		if r, ok := res.Get("Intel+Max1550", "ups"); ok {
			b.ReportMetric(r.PowerOverheadPct, "ups-max1550-power-%")
			b.ReportMetric(r.InvocationS, "ups-invocation-s")
		}
	}
}

// BenchmarkRuntimeDecisionCycle measures the cost of one MAGUS
// decision cycle in isolation (monitor read + Algorithms 1–3 + MSR
// write), the quantity the paper bounds at "under 1 % overhead".
func BenchmarkRuntimeDecisionCycle(b *testing.B) {
	cfg := magus.IntelA100()
	n := magus.NewNode(cfg)
	env, err := magus.BuildEnv(n)
	if err != nil {
		b.Fatal(err)
	}
	rt := magus.NewRuntime(magus.DefaultConfig())
	if err := rt.Attach(env); err != nil {
		b.Fatal(err)
	}
	n.SetDemand(magus.Demand{MemGBs: 150, CPUBusyCores: 8, MemBoundFrac: 0.6})
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(now, time.Millisecond)
		now += 300 * time.Millisecond
		rt.Invoke(now)
	}
}

// BenchmarkNodeStep measures the simulator's per-step cost (the
// scalability floor for large experiment matrices).
func BenchmarkNodeStep(b *testing.B) {
	n := magus.NewNode(magus.IntelA100())
	n.SetDemand(magus.Demand{MemGBs: 200, CPUBusyCores: 20, MemBoundFrac: 0.6, GPUSMUtil: 0.9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
}

// BenchmarkFullRun measures one complete experiment run (UNet on
// Intel+A100 under MAGUS) — the unit of the evaluation matrix.
func BenchmarkFullRun(b *testing.B) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("unet")
	for i := 0; i < b.N; i++ {
		if _, err := magus.Run(cfg, prog, magus.NewRuntime(magus.DefaultConfig()),
			magus.Options{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

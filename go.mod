module github.com/spear-repro/magus

go 1.24

package magus_test

import (
	"testing"

	magus "github.com/spear-repro/magus"
)

// TestColocationPublicAPI drives a co-located run and the tenant study
// through the root facade.
func TestColocationPublicAPI(t *testing.T) {
	spec := magus.NoisyNeighborColocation()
	if spec.Policy != magus.ColocateRoundRobin {
		t.Fatalf("noisy-neighbor policy = %v", spec.Policy)
	}
	res, err := magus.Run(magus.IntelA100(), nil, magus.NewDefaultGovernor(),
		magus.Options{Seed: 1, Tenants: &spec})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Tenants
	if rep == nil || len(rep.Tenants) != 2 {
		t.Fatalf("tenant report = %+v", rep)
	}
	if !rep.Balanced(rep.BalanceTol()) {
		t.Fatal("attribution imbalanced through the facade")
	}
	var bills []magus.TenantEnergy = rep.Tenants
	for _, te := range bills {
		if te.TotalJ() <= 0 {
			t.Fatalf("tenant %s billed nothing", te.Tenant)
		}
	}
}

func TestTenantStudyPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario matrix")
	}
	res, err := magus.RunTenantStudy("a100", magus.QuickExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("study produced no cells")
	}
	for _, c := range res.Cells {
		if !c.Balanced {
			t.Errorf("%s/%s imbalanced", c.Scenario, c.Governor)
		}
	}
}
